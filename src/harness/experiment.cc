#include "harness/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "common/options.h"
#include "common/timer.h"
#include "exec/query_scheduler.h"
#include "storage/buffer_manager.h"

namespace hydra {

double RunResult::DataAccessedFraction(size_t collection_size) const {
  if (collection_size == 0 || num_queries == 0) return 0.0;
  double per_query = static_cast<double>(counters.series_accessed) /
                     static_cast<double>(num_queries);
  return per_query / static_cast<double>(collection_size);
}

double RunResult::RandomIosPerQuery() const {
  if (num_queries == 0) return 0.0;
  return static_cast<double>(counters.random_ios) /
         static_cast<double>(num_queries);
}

double RunResult::AbandonRate() const {
  const uint64_t evaluated =
      counters.full_distances + counters.abandoned_distances;
  if (evaluated == 0) return 0.0;
  return static_cast<double>(counters.abandoned_distances) /
         static_cast<double>(evaluated);
}

double RunResult::PrefetchHitRate() const {
  if (counters.prefetch_issued == 0) return 0.0;
  return static_cast<double>(counters.prefetch_useful) /
         static_cast<double>(counters.prefetch_issued);
}

RunResult RunWorkload(const Index& index, const Dataset& queries,
                      const std::vector<KnnAnswer>& ground_truth,
                      const SearchParams& params,
                      const std::string& setting) {
  RunResult result;
  result.method = index.name();
  result.setting = setting;
  result.index_bytes = index.MemoryBytes();

  std::vector<double> per_query_seconds;
  per_query_seconds.reserve(queries.size());
  std::vector<KnnAnswer> answers;
  answers.reserve(queries.size());

  for (size_t q = 0; q < queries.size(); ++q) {
    QueryCounters counters;
    Timer timer;
    Result<KnnAnswer> ans = index.Search(queries.series(q), params, &counters);
    per_query_seconds.push_back(timer.ElapsedSeconds());
    answers.push_back(ans.ok() ? std::move(ans).value() : KnnAnswer{});
    result.counters += counters;
  }
  result.timing = SummarizeWorkload(per_query_seconds);
  result.accuracy = AggregateAccuracy(ground_truth, answers, params.k);
  result.num_queries = queries.size();
  return result;
}

std::vector<RunResult> RunSweep(const Index& index, const Dataset& queries,
                                const std::vector<KnnAnswer>& ground_truth,
                                const std::vector<SweepPoint>& points) {
  std::vector<RunResult> results;
  results.reserve(points.size());
  for (const SweepPoint& p : points) {
    results.push_back(
        RunWorkload(index, queries, ground_truth, p.params, p.setting));
  }
  return results;
}

std::vector<ThreadSweepPoint> RunThreadSweep(
    const Index& index, const Dataset& queries,
    const std::vector<KnnAnswer>& ground_truth, SearchParams base,
    const std::vector<size_t>& thread_counts) {
  base.num_threads = 1;
  RunResult serial =
      RunWorkload(index, queries, ground_truth, base, "threads=1");
  const double serial_seconds = serial.timing.total_seconds;

  std::vector<ThreadSweepPoint> points;
  points.reserve(thread_counts.size());
  for (size_t threads : thread_counts) {
    ThreadSweepPoint point;
    point.num_threads = threads == 0 ? 1 : threads;
    if (point.num_threads == 1) {
      point.result = serial;  // reuse the baseline measurement
    } else {
      base.num_threads = point.num_threads;
      point.result = RunWorkload(index, queries, ground_truth, base,
                                 "threads=" + std::to_string(threads));
    }
    point.speedup = point.result.timing.total_seconds > 0.0
                        ? serial_seconds / point.result.timing.total_seconds
                        : 0.0;
    points.push_back(std::move(point));
  }
  return points;
}

Table ThreadSweepTable(const std::vector<ThreadSweepPoint>& points,
                       size_t collection_size) {
  Table table({"method", "threads", "total_s", "avg_query_ms",
               "queries_per_min", "speedup", "avg_recall", "abandon_rate",
               "prefetch_hit", "pct_data"});
  for (const ThreadSweepPoint& p : points) {
    const RunResult& r = p.result;
    const double avg_ms =
        r.num_queries > 0 ? r.timing.total_seconds * 1000.0 /
                                static_cast<double>(r.num_queries)
                          : 0.0;
    table.AddRow({r.method, std::to_string(p.num_threads),
                  FormatDouble(r.timing.total_seconds, 4),
                  FormatDouble(avg_ms, 3),
                  FormatDouble(r.timing.throughput_per_min, 1),
                  FormatDouble(p.speedup, 2),
                  FormatDouble(r.accuracy.avg_recall, 4),
                  FormatDouble(p.AbandonRate(), 4),
                  FormatDouble(r.PrefetchHitRate(), 4),
                  FormatDouble(
                      r.DataAccessedFraction(collection_size) * 100.0, 2)});
  }
  return table;
}

double ServingSweepPoint::HitRate() const {
  const uint64_t total =
      result.counters.cache_hits + result.counters.cache_misses;
  if (total == 0) return 0.0;
  return static_cast<double>(result.counters.cache_hits) /
         static_cast<double>(total);
}

namespace {

// Nearest-rank percentile over serving latencies (sorted copy): the
// smallest value with at least pct of the sample at or below it,
// i.e. index ceil(pct * N) - 1.
double PercentileMs(std::vector<double> seconds, double pct) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  size_t rank = static_cast<size_t>(
      std::ceil(pct * static_cast<double>(seconds.size())));
  if (rank > 0) --rank;
  if (rank >= seconds.size()) rank = seconds.size() - 1;
  return seconds[rank] * 1000.0;
}

// Same ids and bit-identical distances. A failed query is recorded as an
// empty KnnAnswer (k >= 1, so a successful answer is never empty);
// pairs with a failure on either side are excluded from the
// determinism comparison — the contract is "every SUCCESSFUL answer is
// exactly right", failures are accounted separately (errors/timeouts).
bool AnswersIdentical(const KnnAnswer& a, const KnnAnswer& b) {
  if (a.ids.empty() || b.ids.empty()) return true;
  return a.ids == b.ids && a.distances == b.distances;
}

// Pushes the whole workload through one serving backend and collects the
// ordered completion stream. The backend comes from `factory` — the
// measurement code is identical for an in-process session and a
// loopback client; `index` is only consulted for report metadata.
ServingSweepPoint RunServingPoint(const ServingBackendFactory& factory,
                                  const Index& index, const Dataset& queries,
                                  const std::vector<KnnAnswer>& ground_truth,
                                  const SearchParams& base,
                                  size_t concurrency,
                                  std::vector<KnnAnswer>* answers_out,
                                  size_t batch_window = 1) {
  ServingSweepPoint point;
  point.concurrency = concurrency;
  point.result.method = index.name();
  point.result.setting = "concurrency=" + std::to_string(concurrency);
  point.result.index_bytes = index.MemoryBytes();

  std::vector<double> latencies;
  latencies.reserve(queries.size());
  std::vector<KnnAnswer> answers;
  answers.reserve(queries.size());

  ServingOptions options;
  options.concurrency = concurrency;
  options.batch_window = batch_window;
  // Coalescing feeds on queue depth: give the closed loop enough room
  // that full windows can actually pile up behind the in-flight slots.
  if (batch_window > 1) {
    options.queue_capacity = std::max(queries.size(), size_t{1});
  }
  std::unique_ptr<ServingBackend> session = factory(options);
  if (session == nullptr) {
    // A factory that cannot produce a backend (e.g. connect refused) is
    // reported as an all-errors point rather than a crash.
    point.errors = queries.size();
    point.matches_serial = false;
    return point;
  }
  Timer wall;
  // Closed-loop load generation: Submit() blocks on the bounded queue, so
  // at most queue_capacity + concurrency queries have their latency clock
  // running — completions need not be consumed for submission to make
  // progress, so one thread drives the whole sweep.
  for (size_t q = 0; q < queries.size(); ++q) {
    session->Submit(queries.series(q), base);
  }
  session->Finish();
  while (std::optional<ServedQuery> served = session->Next()) {
    latencies.push_back(served->seconds);
    if (served->answer.ok()) {
      answers.push_back(std::move(served->answer).value());
    } else {
      if (IsTimeout(served->answer.status().code())) {
        ++point.timeouts;
      } else {
        ++point.errors;
      }
      answers.push_back(KnnAnswer{});
    }
    point.result.counters += served->counters;
  }
  point.wall_seconds = wall.ElapsedSeconds();
  const ServingStats stats = session->stats();
  point.batches_served = stats.batches_served;
  point.coalesced_queries = stats.coalesced_queries;

  point.qps = point.wall_seconds > 0.0
                  ? static_cast<double>(queries.size()) / point.wall_seconds
                  : 0.0;
  point.p50_ms = PercentileMs(latencies, 0.50);
  point.p95_ms = PercentileMs(latencies, 0.95);
  point.p99_ms = PercentileMs(latencies, 0.99);
  point.result.timing = SummarizeWorkload(latencies);
  point.result.accuracy = AggregateAccuracy(ground_truth, answers, base.k);
  point.result.num_queries = queries.size();
  if (answers_out != nullptr) *answers_out = std::move(answers);
  return point;
}

}  // namespace

ServingBackendFactory LocalBackendFactory(const Index& index,
                                          SeriesProvider* provider) {
  return [&index, provider](const ServingOptions& options) {
    return std::make_unique<ServingSession>(index, provider, options);
  };
}

std::vector<ServingSweepPoint> RunServingSweep(
    const Index& index, const Dataset& queries,
    const std::vector<KnnAnswer>& ground_truth, SearchParams base,
    const std::vector<size_t>& concurrency_levels,
    SeriesProvider* provider, size_t batch_window) {
  return RunServingSweep(LocalBackendFactory(index, provider), index, queries,
                         ground_truth, base, concurrency_levels, provider,
                         batch_window);
}

std::vector<ServingSweepPoint> RunServingSweep(
    const ServingBackendFactory& factory, const Index& index,
    const Dataset& queries, const std::vector<KnnAnswer>& ground_truth,
    SearchParams base, const std::vector<size_t>& concurrency_levels,
    SeriesProvider* provider, size_t batch_window) {
  (void)provider;  // levels are clamped backend-side against pin capacity
  const bool batching = batch_window > 1 &&
                        index.capabilities().batched_queries &&
                        index.capabilities().concurrent_queries;
  // Untimed warm-up pass: every point then measures steady-state serving
  // from a comparably warmed buffer pool. Without it the sequential
  // baseline would pay all the cold page misses and the concurrency
  // levels would be credited cache warm-up as "speedup".
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryCounters scratch;
    (void)index.Search(queries.series(q), base, &scratch);
  }

  // Sequential baseline: the reference answers every level must
  // reproduce, and the denominator of the throughput speedup.
  std::vector<KnnAnswer> serial_answers;
  ServingSweepPoint serial = RunServingPoint(factory, index, queries,
                                             ground_truth, base, 1,
                                             &serial_answers);

  std::vector<ServingSweepPoint> points;
  points.reserve(concurrency_levels.size());
  for (size_t level : concurrency_levels) {
    const size_t concurrency = level == 0 ? 1 : level;
    ServingSweepPoint point;
    std::vector<KnnAnswer> answers;
    if (concurrency == 1) {
      point = serial;  // reuse the baseline measurement
      point.matches_serial = true;
    } else {
      point = RunServingPoint(factory, index, queries, ground_truth, base,
                              concurrency, &answers);
      point.matches_serial =
          answers.size() == serial_answers.size() &&
          std::equal(answers.begin(), answers.end(), serial_answers.begin(),
                     AnswersIdentical);
    }
    point.speedup = point.wall_seconds > 0.0
                        ? serial.wall_seconds / point.wall_seconds
                        : 0.0;
    if (batching) {
      // Same level again with the coalescing window armed: the batched
      // run is the comparison column, and its answers are held to the
      // same bit-identity contract as the unbatched one.
      std::vector<KnnAnswer> batched_answers;
      ServingSweepPoint batched =
          RunServingPoint(factory, index, queries, ground_truth, base,
                          concurrency, &batched_answers, batch_window);
      point.batched_qps = batched.qps;
      point.batched_p99_ms = batched.p99_ms;
      point.batched_gain =
          point.qps > 0.0 ? batched.qps / point.qps : 0.0;
      point.batches_served = batched.batches_served;
      point.coalesced_queries = batched.coalesced_queries;
      point.matches_serial =
          point.matches_serial &&
          batched_answers.size() == serial_answers.size() &&
          std::equal(batched_answers.begin(), batched_answers.end(),
                     serial_answers.begin(), AnswersIdentical);
    }
    points.push_back(std::move(point));
  }
  return points;
}

Table ServingSweepTable(const std::vector<ServingSweepPoint>& points) {
  Table table({"method", "concurrency", "wall_s", "qps", "p50_ms", "p95_ms",
               "p99_ms", "speedup", "b_qps", "b_p99_ms", "b_gain", "batches",
               "avg_recall", "hit_rate", "prefetch_hit", "errors", "timeouts",
               "io_retries", "match_serial"});
  for (const ServingSweepPoint& p : points) {
    table.AddRow({p.result.method, std::to_string(p.concurrency),
                  FormatDouble(p.wall_seconds, 4), FormatDouble(p.qps, 1),
                  FormatDouble(p.p50_ms, 3), FormatDouble(p.p95_ms, 3),
                  FormatDouble(p.p99_ms, 3), FormatDouble(p.speedup, 2),
                  FormatDouble(p.batched_qps, 1),
                  FormatDouble(p.batched_p99_ms, 3),
                  FormatDouble(p.batched_gain, 2),
                  std::to_string(p.batches_served),
                  FormatDouble(p.result.accuracy.avg_recall, 4),
                  FormatDouble(p.HitRate(), 4),
                  FormatDouble(p.result.PrefetchHitRate(), 4),
                  std::to_string(p.errors), std::to_string(p.timeouts),
                  std::to_string(p.result.counters.io_retries),
                  p.matches_serial ? "yes" : "NO"});
  }
  return table;
}

namespace {

// One fixed-schedule run (see RunOpenLoopSweep): the submitter thread is
// the arrival process, the calling thread is the drain.
OpenLoopPoint RunOpenLoopPoint(const ServingBackendFactory& factory,
                               const Dataset& queries,
                               const SearchParams& base, double rate,
                               size_t concurrency, size_t total,
                               const std::vector<KnnAnswer>& reference) {
  using Clock = std::chrono::steady_clock;
  OpenLoopPoint point;
  point.offered_qps = rate;
  point.num_queries = total;

  ServingOptions options;
  options.concurrency = concurrency;
  // Open loop: the generator must NEVER block on backpressure (that is
  // the closed loop again) — size the queue to hold the entire run.
  options.queue_capacity = total + concurrency;
  std::unique_ptr<ServingBackend> session = factory(options);
  if (session == nullptr) {  // see RunServingPoint
    point.errors = total;
    point.matches_serial = false;
    return point;
  }

  // Schedule anchored shortly ahead so query 0's arrival is not already
  // in the past by the time the submitter thread is up.
  const Clock::time_point t0 = Clock::now() + std::chrono::milliseconds(5);
  const double interval_s = rate > 0.0 ? 1.0 / rate : 0.0;
  std::thread submitter([&] {
    for (size_t i = 0; i < total; ++i) {
      const Clock::time_point due =
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(interval_s *
                                                 static_cast<double>(i)));
      std::this_thread::sleep_until(due);  // past-due wakes immediately
      session->Submit(queries.series(i % queries.size()), base);
    }
  });

  // Drain in ticket (= schedule) order, timestamping each completion
  // against ITS OWN scheduled arrival — a query stuck behind a backlog
  // is charged its whole queueing delay even though it was submitted
  // late, which is the open-loop point.
  std::vector<double> latencies;
  latencies.reserve(total);
  Clock::time_point last_done = t0;
  for (size_t i = 0; i < total; ++i) {
    std::optional<ServedQuery> served = session->Next();
    if (!served.has_value()) break;  // cannot happen before Finish()
    const Clock::time_point now = Clock::now();
    last_done = now;
    const Clock::time_point due =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(interval_s *
                                               static_cast<double>(i)));
    latencies.push_back(
        std::chrono::duration<double>(now - due).count());
    if (served->answer.ok()) {
      if (!AnswersIdentical(served->answer.value(),
                            reference[i % reference.size()])) {
        point.matches_serial = false;
      }
    } else {
      if (IsTimeout(served->answer.status().code())) {
        ++point.timeouts;
      } else {
        ++point.errors;
      }
    }
  }
  submitter.join();
  session->Finish();

  point.wall_seconds =
      std::chrono::duration<double>(last_done - t0).count();
  point.achieved_qps = point.wall_seconds > 0.0
                           ? static_cast<double>(total) / point.wall_seconds
                           : 0.0;
  point.p50_ms = PercentileMs(latencies, 0.50);
  point.p95_ms = PercentileMs(latencies, 0.95);
  point.p99_ms = PercentileMs(latencies, 0.99);
  double sum = 0.0;
  for (double s : latencies) sum += s;
  point.mean_ms = latencies.empty()
                      ? 0.0
                      : (sum / static_cast<double>(latencies.size())) * 1000.0;
  return point;
}

}  // namespace

std::vector<OpenLoopPoint> RunOpenLoopSweep(
    const Index& index, const Dataset& queries, SearchParams base,
    const std::vector<double>& offered_qps, size_t concurrency,
    SeriesProvider* provider, size_t total_queries) {
  return RunOpenLoopSweep(LocalBackendFactory(index, provider), index, queries,
                          base, offered_qps, concurrency, provider,
                          total_queries);
}

std::vector<OpenLoopPoint> RunOpenLoopSweep(
    const ServingBackendFactory& factory, const Index& index,
    const Dataset& queries, SearchParams base,
    const std::vector<double>& offered_qps, size_t concurrency,
    SeriesProvider* provider, size_t total_queries) {
  (void)provider;  // admission is clamped backend-side against pin capacity
  const size_t total = total_queries == 0 ? queries.size() : total_queries;
  // Serial reference answers (and pool warm-up) once for every rate: the
  // determinism column compares each successful served answer against
  // the one-query-at-a-time result for the same query.
  std::vector<KnnAnswer> reference;
  reference.reserve(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryCounters scratch;
    auto answer = index.Search(queries.series(q), base, &scratch);
    reference.push_back(answer.ok() ? std::move(answer).value()
                                    : KnnAnswer{});
  }
  std::vector<OpenLoopPoint> points;
  points.reserve(offered_qps.size());
  for (double rate : offered_qps) {
    if (rate <= 0.0) continue;
    points.push_back(RunOpenLoopPoint(factory, queries, base, rate,
                                      concurrency, total, reference));
  }
  return points;
}

Table OpenLoopTable(const std::vector<OpenLoopPoint>& points,
                    const std::string& method) {
  Table table({"method", "offered_qps", "achieved_qps", "wall_s", "p50_ms",
               "p95_ms", "p99_ms", "mean_ms", "errors", "timeouts",
               "match_serial"});
  for (const OpenLoopPoint& p : points) {
    table.AddRow({method, FormatDouble(p.offered_qps, 1),
                  FormatDouble(p.achieved_qps, 1),
                  FormatDouble(p.wall_seconds, 4), FormatDouble(p.p50_ms, 3),
                  FormatDouble(p.p95_ms, 3), FormatDouble(p.p99_ms, 3),
                  FormatDouble(p.mean_ms, 3), std::to_string(p.errors),
                  std::to_string(p.timeouts),
                  p.matches_serial ? "yes" : "NO"});
  }
  return table;
}

AvailabilityPoint RunAvailabilityPoint(
    const ServingBackendFactory& factory, const Dataset& queries,
    const SearchParams& base, double rate, size_t concurrency, size_t total,
    const std::vector<KnnAnswer>& reference,
    const std::function<void()>& chaos) {
  using Clock = std::chrono::steady_clock;
  AvailabilityPoint point;
  point.offered_qps = rate;
  point.num_queries = total;

  ServingOptions options;
  options.concurrency = concurrency;
  options.queue_capacity = total + concurrency;  // open loop: never block
  std::unique_ptr<ServingBackend> session = factory(options);
  if (session == nullptr) {
    point.typed_errors = total;
    point.matches_serial = false;
    return point;
  }

  // The chaos action runs on its own thread with its own internal
  // timing (sleep → kill → sleep → restart): the load keeps arriving on
  // schedule while it happens, which is the whole measurement.
  std::thread chaos_thread;
  if (chaos) chaos_thread = std::thread(chaos);

  const Clock::time_point t0 = Clock::now() + std::chrono::milliseconds(5);
  const double interval_s = rate > 0.0 ? 1.0 / rate : 0.0;
  std::thread submitter([&] {
    for (size_t i = 0; i < total; ++i) {
      const Clock::time_point due =
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(interval_s *
                                                 static_cast<double>(i)));
      std::this_thread::sleep_until(due);
      session->Submit(queries.series(i % queries.size()), base);
    }
  });

  std::vector<double> latencies;
  latencies.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    std::optional<ServedQuery> served = session->Next();
    if (!served.has_value()) break;
    ++point.completions;
    const Clock::time_point due =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(interval_s *
                                               static_cast<double>(i)));
    const double latency_s =
        std::chrono::duration<double>(Clock::now() - due).count();
    latencies.push_back(latency_s);
    if (served->answer.ok()) {
      ++point.ok;
      if (base.deadline_ms <= 0 || latency_s * 1000.0 <= base.deadline_ms) {
        ++point.ok_within_deadline;
      }
      if (!AnswersIdentical(served->answer.value(),
                            reference[i % reference.size()])) {
        point.matches_serial = false;
      }
    } else if (IsTimeout(served->answer.status().code())) {
      ++point.timeouts;
    } else {
      ++point.typed_errors;
    }
  }
  submitter.join();
  session->Finish();
  if (chaos_thread.joinable()) chaos_thread.join();

  point.availability =
      total > 0 ? static_cast<double>(point.ok_within_deadline) /
                      static_cast<double>(total)
                : 0.0;
  point.p50_ms = PercentileMs(latencies, 0.50);
  point.p99_ms = PercentileMs(latencies, 0.99);
  return point;
}

Table AvailabilityTable(const std::vector<AvailabilityPoint>& points,
                        const std::string& scenario) {
  Table table({"scenario", "offered_qps", "n", "done", "ok", "ok_in_ddl",
               "avail", "errors", "timeouts", "p50_ms", "p99_ms",
               "match_serial"});
  for (const AvailabilityPoint& p : points) {
    table.AddRow({scenario, FormatDouble(p.offered_qps, 1),
                  std::to_string(p.num_queries), std::to_string(p.completions),
                  std::to_string(p.ok), std::to_string(p.ok_within_deadline),
                  FormatDouble(p.availability, 4),
                  std::to_string(p.typed_errors), std::to_string(p.timeouts),
                  FormatDouble(p.p50_ms, 3), FormatDouble(p.p99_ms, 3),
                  p.matches_serial ? "yes" : "NO"});
  }
  return table;
}

std::vector<double> ParseRateList(const char* text,
                                  std::vector<double> fallback) {
  if (text == nullptr) return fallback;
  std::vector<double> rates;
  std::string s(text);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string token = s.substr(pos, comma - pos);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() && *end == '\0' && parsed > 0.0) {
      rates.push_back(parsed);
    }
    pos = comma + 1;
  }
  return rates.empty() ? fallback : rates;
}

namespace {

// One temperature-controlled measurement for the prefetch sweep: cold
// drops (and drains) the pool before every query, warm leaves it as the
// previous query left it.
RunResult RunPrefetchWorkload(const Index& index, const Dataset& queries,
                              const std::vector<KnnAnswer>& ground_truth,
                              const SearchParams& params,
                              const std::string& setting, BufferManager* pool,
                              bool cold, std::vector<KnnAnswer>* answers_out) {
  RunResult result;
  result.method = index.name();
  result.setting = setting;
  result.index_bytes = index.MemoryBytes();

  std::vector<double> per_query_seconds;
  per_query_seconds.reserve(queries.size());
  std::vector<KnnAnswer> answers;
  answers.reserve(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    // DropCache cancels queued readahead and drains in-flight prefetch
    // loads, so a cold query never inherits pages (or background reads)
    // from the previous one.
    if (cold) pool->DropCache();
    QueryCounters counters;
    Timer timer;
    Result<KnnAnswer> ans = index.Search(queries.series(q), params, &counters);
    per_query_seconds.push_back(timer.ElapsedSeconds());
    answers.push_back(ans.ok() ? std::move(ans).value() : KnnAnswer{});
    result.counters += counters;
  }
  result.timing = SummarizeWorkload(per_query_seconds);
  result.accuracy = AggregateAccuracy(ground_truth, answers, params.k);
  result.num_queries = queries.size();
  if (answers_out != nullptr) *answers_out = std::move(answers);
  return result;
}

}  // namespace

std::vector<PrefetchSweepPoint> RunPrefetchSweep(
    const Index& index, const Dataset& queries,
    const std::vector<KnnAnswer>& ground_truth, SearchParams base,
    const std::vector<size_t>& depths, BufferManager* pool) {
  std::vector<PrefetchSweepPoint> points;
  for (bool cold : {true, false}) {
    if (!cold) {
      // Warm steady state: one untimed pass charges the cold misses.
      base.prefetch_depth = SearchParams::kPrefetchOff;
      for (size_t q = 0; q < queries.size(); ++q) {
        QueryCounters scratch;
        (void)index.Search(queries.series(q), base, &scratch);
      }
    }
    // Depth 0 is the serial-identical baseline: reference answers and
    // the speedup denominator for this temperature. Forced off (not just
    // unset), so an exported HYDRA_PREFETCH cannot contaminate it.
    base.prefetch_depth = SearchParams::kPrefetchOff;
    std::vector<KnnAnswer> baseline_answers;
    const std::string temp = cold ? "cold" : "warm";
    RunResult baseline = RunPrefetchWorkload(
        index, queries, ground_truth, base, "depth=0," + temp, pool, cold,
        &baseline_answers);
    const double baseline_seconds = baseline.timing.total_seconds;

    for (size_t depth : depths) {
      PrefetchSweepPoint point;
      point.depth = depth;
      point.cold = cold;
      if (depth == 0) {
        point.result = baseline;
      } else {
        base.prefetch_depth = depth;
        std::vector<KnnAnswer> answers;
        point.result = RunPrefetchWorkload(
            index, queries, ground_truth, base,
            "depth=" + std::to_string(depth) + "," + temp, pool, cold,
            &answers);
        point.matches_serial =
            answers.size() == baseline_answers.size() &&
            std::equal(answers.begin(), answers.end(),
                       baseline_answers.begin(), AnswersIdentical);
      }
      point.speedup = point.result.timing.total_seconds > 0.0
                          ? baseline_seconds /
                                point.result.timing.total_seconds
                          : 0.0;
      points.push_back(std::move(point));
    }
  }
  return points;
}

Table PrefetchSweepTable(const std::vector<PrefetchSweepPoint>& points,
                         size_t collection_size) {
  Table table({"method", "depth", "pool", "total_s", "speedup", "avg_recall",
               "abandon_rate", "prefetch_hit", "hit_rate", "pct_data",
               "match_serial"});
  for (const PrefetchSweepPoint& p : points) {
    const RunResult& r = p.result;
    const uint64_t pool_total =
        r.counters.cache_hits + r.counters.cache_misses;
    const double hit_rate =
        pool_total > 0 ? static_cast<double>(r.counters.cache_hits) /
                             static_cast<double>(pool_total)
                       : 0.0;
    table.AddRow({r.method, std::to_string(p.depth), p.cold ? "cold" : "warm",
                  FormatDouble(r.timing.total_seconds, 4),
                  FormatDouble(p.speedup, 2),
                  FormatDouble(r.accuracy.avg_recall, 4),
                  FormatDouble(r.AbandonRate(), 4),
                  FormatDouble(r.PrefetchHitRate(), 4),
                  FormatDouble(hit_rate, 4),
                  FormatDouble(
                      r.DataAccessedFraction(collection_size) * 100.0, 2),
                  p.matches_serial ? "yes" : "NO"});
  }
  return table;
}

std::vector<size_t> PrefetchDepthsFromEnv() {
  std::vector<size_t> depths = {0};  // the off baseline, always measured
  for (size_t d :
       ParseCountList(EnvOrString("HYDRA_PREFETCH_DEPTHS", nullptr),
                      {4, 16})) {
    depths.push_back(d);
  }
  return depths;
}

std::vector<size_t> ParseCountList(const char* text,
                                   std::vector<size_t> fallback) {
  if (text == nullptr) return fallback;
  std::vector<size_t> counts;
  std::string s(text);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    char* end = nullptr;
    const std::string token = s.substr(pos, comma - pos);
    unsigned long long parsed = std::strtoull(token.c_str(), &end, 10);
    if (end != token.c_str() && *end == '\0' && parsed > 0) {
      counts.push_back(static_cast<size_t>(parsed));
    }
    pos = comma + 1;
  }
  return counts.empty() ? fallback : counts;
}

std::vector<size_t> ConcurrencyLevelsFromEnv() {
  return ParseCountList(EnvOrString("HYDRA_CONCURRENCY", nullptr),
                        {1, 2, 4, 8});
}

size_t EnvCount(const char* name, size_t fallback) {
  const size_t v = EnvOrSize(name, fallback);
  return v > 0 ? v : fallback;
}

std::vector<SweepPoint> NgSweep(size_t k, const std::vector<size_t>& nprobes) {
  std::vector<SweepPoint> out;
  for (size_t np : nprobes) {
    SweepPoint p;
    p.params.mode = SearchMode::kNgApproximate;
    p.params.k = k;
    p.params.nprobe = np;
    p.params.efs = np;  // HNSW interprets the knob as efs
    p.setting = "nprobe=" + std::to_string(np);
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<SweepPoint> EpsilonSweep(size_t k,
                                     const std::vector<double>& epsilons,
                                     double delta) {
  std::vector<SweepPoint> out;
  for (double eps : epsilons) {
    SweepPoint p;
    p.params.mode = SearchMode::kDeltaEpsilon;
    p.params.k = k;
    p.params.epsilon = eps;
    p.params.delta = delta;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "eps=%.2f,delta=%.2f", eps, delta);
    p.setting = buf;
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace hydra
