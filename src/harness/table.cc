#include "harness/table.h"

#include <algorithm>
#include <cstdio>

namespace hydra {

std::string Table::ToAlignedText() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      out += cell;
      out.append(widths[c] - cell.size() + 2, ' ');
    }
    // Trim trailing spaces for clean diffs.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(headers_);
  std::vector<std::string> rule(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule[c].assign(widths[c], '-');
  }
  emit_row(rule);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace hydra
