#ifndef HYDRA_INDEX_LEAF_SCANNER_H_
#define HYDRA_INDEX_LEAF_SCANNER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/cancellation.h"
#include "common/counters.h"
#include "common/status.h"
#include "core/dataset.h"
#include "distance/simd_dispatch.h"
#include "index/answer_set.h"
#include "storage/buffer_manager.h"

namespace hydra {

// The one leaf/candidate evaluation loop shared by every index: fetches
// raw series, runs the dispatched early-abandoning distance kernel
// against the current k-th answer, offers results to the AnswerSet, and
// keeps the counter bookkeeping honest (completed evaluations land in
// full_distances, abandoned ones in abandoned_distances — never both).
//
// Contiguously stored candidates (sequential scans, buffer-pool pages)
// go through the SIMD batch kernel in chunks, refreshing the abandon
// threshold between chunks. Results are identical to evaluating the
// candidates one by one in order: a chunk only ever sees a *looser*
// (older) threshold, so candidates it completes instead of abandoning
// still lose to AnswerSet::Offer, and completed distances are the same
// numbers either way.
//
// Provider-backed fetches go through the pin-handle API
// (SeriesProvider::PinSeries/PinRun): each candidate or run is pinned for
// exactly the duration of its evaluation, so the scanned span stays valid
// even while other threads' scans churn a bounded buffer pool. At most
// one pin is held per scanner at any time.
//
// Readahead: with prefetch_depth > 0 (pages of lookahead), the scanner
// announces the NEXT portion of its id stream to the provider
// (SeriesProvider::Prefetch) right after pinning — and before evaluating
// — the current run, so the background prefetch workers overlap the next
// page's read with the current page's distance kernels. ScanIds
// additionally coalesces consecutive ids into contiguous runs (tree
// indexes sort their leaf ids at build time to expose them), which both
// rides the SIMD batch kernel and turns the leaf's I/O footprint into
// sequential readahead windows. Prefetch is a pure cache hint: answers
// are identical at every depth, including 0 (off).
//
// Failure semantics: provider-backed scans surface the provider's typed
// Status (DataCorruption, IoError, Unavailable — PinSeriesChecked /
// PinRunChecked) the moment a fetch fails, and check the optional
// CancellationToken at every run/page boundary, returning
// DeadlineExceeded/Cancelled with partial work discarded. Either way the
// held pin is released before returning, so an abandoned query leaves no
// residue on a shared pool. Announced prefetches carry the token too,
// so the background workers drop a dead query's readahead.
class LeafScanner {
 public:
  LeafScanner(std::span<const float> query, AnswerSet* answers,
              QueryCounters* counters, size_t prefetch_depth = 0,
              std::shared_ptr<CancellationToken> cancel = nullptr)
      : query_(query),
        answers_(answers),
        counters_(counters),
        prefetch_depth_(prefetch_depth),
        cancel_(std::move(cancel)),
        kernels_(ActiveKernels()) {}

  // Evaluates one candidate already in memory.
  void Scan(std::span<const float> series, int64_t id);

  // Fetches one id from the provider; false if the fetch failed (the
  // candidate is skipped, nothing else changes).
  bool ScanFrom(SeriesProvider* provider, int64_t id);

  // Evaluates every id; the provider's typed Status as soon as a fetch
  // fails (a buffer pool exhausted by concurrent queries, a read error
  // that survived its retries, a checksum mismatch) — a silently skipped
  // candidate could be a true neighbor, so the failure must surface
  // instead of degrading exactness. Candidates evaluated before the
  // failure have already been offered to the answer set; the caller
  // abandons the query, not the answers. Returns ids.size() on success.
  Result<size_t> ScanIds(SeriesProvider* provider,
                         std::span<const int64_t> ids);

  // Dataset-backed variant for indexes that hold the data directly
  // (cannot fail: no I/O).
  size_t ScanIds(const Dataset& data, std::span<const int64_t> ids);

  // Evaluates `count` candidates laid out at block + c * stride whose ids
  // are first_id, first_id + 1, ...; feeds the batch kernel chunk-wise.
  // Returns `count`.
  size_t ScanContiguous(const float* block, size_t count, size_t stride,
                        int64_t first_id);

  // Fetches maximal contiguous runs of [first, first + count) from the
  // provider (SeriesProvider::GetSeriesRun) and batch-evaluates them.
  // The provider's typed Status when a fetch fails (same contract as
  // ScanIds); `count` on success.
  Result<size_t> ScanRange(SeriesProvider* provider, uint64_t first,
                           uint64_t count);

  // Announces (at most) the first `max_pages` pages covering the id list
  // to the provider's prefetcher; returns the pages announced. Used by
  // the tree search to warm the best-priority queued leaves while the
  // current leaf scans. No-op (0) unless the provider supports prefetch.
  size_t PrefetchIds(SeriesProvider* provider, std::span<const int64_t> ids,
                     size_t max_pages);

  size_t prefetch_depth() const { return prefetch_depth_; }

  // End (exclusive) of the maximal run of consecutive ids starting at
  // `start` — the unit that batches and prefetches as one contiguous
  // stretch. Shared by the serial and parallel scan loops.
  static size_t RunEnd(std::span<const int64_t> ids, size_t start);

  // Announces the runs of ids[from..) to `provider`'s prefetcher until
  // `max_pages` pages are covered, charging `counters` (a worker's own
  // instance during fan-outs); returns the pages announced. The one
  // implementation of the run/page arithmetic both scanners use.
  // `cancel` travels with each announced page so a dead query's queued
  // readahead is skipped, not loaded.
  static size_t AnnounceRuns(SeriesProvider* provider,
                             std::span<const int64_t> ids, size_t from,
                             size_t max_pages, uint64_t series_per_page,
                             QueryCounters* counters,
                             std::shared_ptr<CancellationToken> cancel =
                                 nullptr);

 private:
  // Candidates per batch-kernel call; bounds threshold staleness while
  // keeping per-call overhead negligible.
  static constexpr size_t kChunk = 64;

  std::span<const float> query_;
  AnswerSet* answers_;
  QueryCounters* counters_;
  size_t prefetch_depth_;
  std::shared_ptr<CancellationToken> cancel_;  // null = not cancellable
  const DistanceKernels& kernels_;
  std::vector<double> batch_out_;  // scratch reused across chunks
};

// The process-default prefetch depth from HYDRA_PREFETCH (pages of
// lookahead; unset/invalid = 0 = off), parsed once. SearchParams::
// prefetch_depth = 0 falls back to this, so the env knob turns the whole
// scan path's readahead on without touching call sites.
size_t DefaultPrefetchDepth();

// The effective lookahead of a query: its explicit prefetch_depth, or
// the HYDRA_PREFETCH default when unset (0).
struct SearchParams;  // index/index.h
size_t ResolvePrefetchDepth(const SearchParams& params);

// The effective cancellation token of a query: its explicit token, or a
// fresh deadline token when only deadline_ms is set (measured from this
// call — the serving engine passes an explicit token instead so queue
// wait counts against the budget), or null when the query is not
// cancellable. Every index Search() resolves through this one helper so
// the deadline knob behaves identically across methods.
std::shared_ptr<CancellationToken> ResolveCancellation(
    const SearchParams& params);

}  // namespace hydra

#endif  // HYDRA_INDEX_LEAF_SCANNER_H_
