#include "index/scan/linear_scan.h"

#include "index/answer_set.h"
#include "index/leaf_scanner.h"

namespace hydra {

Result<KnnAnswer> LinearScanIndex::Search(std::span<const float> query,
                                          const SearchParams& params,
                                          QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  AnswerSet answers(params.k);
  const uint64_t n = provider_->num_series();
  // The whole file is one ascending id range: the scanner pulls maximal
  // contiguous runs (the full dataset in memory, page-sized runs from the
  // buffer manager) and feeds the SIMD batch kernel.
  LeafScanner scanner(query, &answers, counters);
  if (scanner.ScanRange(provider_, 0, n) != n) {
    return Status::IoError("series fetch failed");
  }
  return answers.Finish();
}

}  // namespace hydra
