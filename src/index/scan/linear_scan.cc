#include "index/scan/linear_scan.h"

#include "exec/parallel_scanner.h"
#include "index/answer_set.h"

namespace hydra {

Result<KnnAnswer> LinearScanIndex::Search(std::span<const float> query,
                                          const SearchParams& params,
                                          QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  AnswerSet answers(params.k);
  const uint64_t n = provider_->num_series();
  // The whole file is one ascending id range: each worker pulls maximal
  // contiguous runs of its shard (the full dataset in memory, page-sized
  // runs from the buffer manager) and feeds the SIMD batch kernel. This
  // is the partition-parallel scaling primitive — with num_threads = 1 it
  // is exactly the serial batched scan.
  ParallelLeafScanner scanner(query, &answers, counters, params.num_threads,
                              params.pin_budget, ResolvePrefetchDepth(params),
                              ResolveCancellation(params));
  HYDRA_ASSIGN_OR_RETURN(size_t scanned, scanner.ScanRange(provider_, 0, n));
  if (scanned != n) {
    return Status::IoError("series fetch failed");
  }
  return answers.Finish();
}

}  // namespace hydra
