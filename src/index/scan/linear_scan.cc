#include "index/scan/linear_scan.h"

#include <algorithm>
#include <memory>

#include "exec/parallel_scanner.h"
#include "index/answer_set.h"
#include "index/batch_scanner.h"

namespace hydra {

Result<KnnAnswer> LinearScanIndex::Search(std::span<const float> query,
                                          const SearchParams& params,
                                          QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (query.size() != provider_->series_length()) {
    return Status::InvalidArgument("query length mismatch");
  }
  AnswerSet answers(params.k);
  const uint64_t n = provider_->num_series();
  // The whole file is one ascending id range: each worker pulls maximal
  // contiguous runs of its shard (the full dataset in memory, page-sized
  // runs from the buffer manager) and feeds the SIMD batch kernel. This
  // is the partition-parallel scaling primitive — with num_threads = 1 it
  // is exactly the serial batched scan.
  ParallelLeafScanner scanner(query, &answers, counters, params.num_threads,
                              params.pin_budget, ResolvePrefetchDepth(params),
                              ResolveCancellation(params));
  HYDRA_ASSIGN_OR_RETURN(size_t scanned, scanner.ScanRange(provider_, 0, n));
  if (scanned != n) {
    return Status::IoError("series fetch failed");
  }
  return answers.Finish();
}

std::vector<Result<KnnAnswer>> LinearScanIndex::BatchSearch(
    std::span<const BatchQuery> batch) const {
  std::vector<Result<KnnAnswer>> results(batch.size(),
                                         Status::Internal("unset"));
  // Members with invalid parameters fail alone, before the shared scan.
  std::vector<size_t> members;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].params.k == 0) {
      results[i] = Status::InvalidArgument("k must be > 0");
    } else if (batch[i].query.size() != provider_->series_length()) {
      results[i] = Status::InvalidArgument("query length mismatch");
    } else {
      members.push_back(i);
    }
  }
  if (members.size() <= 1) {
    // Nothing to amortize; the per-query path keeps its intra-query
    // fan-out (num_threads) for the lone member.
    for (size_t i : members) {
      results[i] =
          Search(batch[i].query, batch[i].params, batch[i].counters);
    }
    return results;
  }
  // The shared scan walks the collection once for every member. Its
  // readahead window is a cache hint, so the largest requested depth
  // serves the whole batch.
  size_t prefetch_depth = 0;
  for (size_t i : members) {
    prefetch_depth =
        std::max(prefetch_depth, ResolvePrefetchDepth(batch[i].params));
  }
  BatchLeafScanner scanner(prefetch_depth);
  std::vector<std::unique_ptr<AnswerSet>> answers;
  std::vector<size_t> slots;
  answers.reserve(members.size());
  for (size_t i : members) {
    answers.push_back(std::make_unique<AnswerSet>(batch[i].params.k));
    slots.push_back(scanner.AddQuery(batch[i].query, answers.back().get(),
                                     batch[i].counters,
                                     ResolveCancellation(batch[i].params)));
  }
  scanner.ScanRange(provider_, 0, provider_->num_series(), slots);
  for (size_t m = 0; m < members.size(); ++m) {
    if (scanner.alive(slots[m])) {
      results[members[m]] = answers[m]->Finish();
    } else {
      results[members[m]] = scanner.status(slots[m]);
    }
  }
  return results;
}

}  // namespace hydra
