#include "index/scan/linear_scan.h"

#include "distance/euclidean.h"
#include "index/answer_set.h"

namespace hydra {

Result<KnnAnswer> LinearScanIndex::Search(std::span<const float> query,
                                          const SearchParams& params,
                                          QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  AnswerSet answers(params.k);
  const uint64_t n = provider_->num_series();
  for (uint64_t i = 0; i < n; ++i) {
    std::span<const float> s = provider_->GetSeries(i, counters);
    if (s.empty()) return Status::IoError("series fetch failed");
    double d2 =
        SquaredEuclideanEarlyAbandon(query, s, answers.KthDistanceSq());
    if (counters != nullptr) ++counters->full_distances;
    answers.Offer(d2, static_cast<int64_t>(i));
  }
  return answers.Finish();
}

}  // namespace hydra
