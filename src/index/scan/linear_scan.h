#ifndef HYDRA_INDEX_SCAN_LINEAR_SCAN_H_
#define HYDRA_INDEX_SCAN_LINEAR_SCAN_H_

#include <memory>

#include "index/index.h"
#include "storage/buffer_manager.h"

namespace hydra {

// Sequential-scan exact k-NN over a SeriesProvider. The paper's yardstick:
// scans cannot support efficient approximate search (every candidate is
// read regardless), so this index answers every mode exactly.
class LinearScanIndex : public Index {
 public:
  explicit LinearScanIndex(SeriesProvider* provider) : provider_(provider) {}

  std::string name() const override { return "scan"; }
  IndexCapabilities capabilities() const override {
    IndexCapabilities c;
    c.exact = true;
    c.disk_resident = true;
    c.batched_queries = true;
    c.summarization = "raw";
    return c;
  }
  size_t MemoryBytes() const override { return sizeof(*this); }

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

  // Shared full scan: the whole collection is walked ONCE, each pinned
  // page evaluated for every batch member through the multi-query kernel
  // (index/batch_scanner.h). Per-member answers match solo Search bit for
  // bit — the batched scan pins the same page runs in the same order and
  // refreshes each query's abandon threshold at the same chunk
  // granularity as the serial scanner.
  std::vector<Result<KnnAnswer>> BatchSearch(
      std::span<const BatchQuery> batch) const override;

 private:
  SeriesProvider* provider_;  // not owned
};

}  // namespace hydra

#endif  // HYDRA_INDEX_SCAN_LINEAR_SCAN_H_
