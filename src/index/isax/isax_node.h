#ifndef HYDRA_INDEX_ISAX_ISAX_NODE_H_
#define HYDRA_INDEX_ISAX_ISAX_NODE_H_

#include <cstdint>
#include <vector>

#include "index/leaf_sort.h"

namespace hydra {

// One iSAX tree node. A node is identified by an iSAX word: one symbol
// per segment at full cardinality plus the number of leading bits of that
// symbol the node actually constrains. The root constrains 0 bits; its
// children constrain 1 bit in every segment; deeper nodes are produced by
// binary splits that add one bit to a single segment.
struct IsaxNode {
  std::vector<uint16_t> word;  // full-cardinality symbols (segment count)
  std::vector<uint8_t> bits;   // constrained leading bits per segment

  bool is_leaf = true;
  uint8_t split_segment = 0;  // internal: which segment gained a bit
  int32_t left = -1;          // next bit 0
  int32_t right = -1;         // next bit 1
  size_t count = 0;           // series in subtree

  // Leaf payload: dataset positions and their full-cardinality words
  // (kept so splits re-route without recomputing summaries — the in-core
  // analog of iSAX2+'s bulk-load buffers).
  std::vector<int64_t> series_ids;
  std::vector<uint16_t> leaf_words;  // series_ids.size() × segments

  size_t ApproxBytes() const {
    return sizeof(IsaxNode) + word.size() * sizeof(uint16_t) +
           bits.size() + series_ids.size() * sizeof(int64_t) +
           leaf_words.size() * sizeof(uint16_t);
  }

  // Sorts the leaf payload by series id, permuting leaf_words (stride
  // `segments`) alongside — see index/leaf_sort.h. Splits partition in
  // order, so children of a sorted leaf stay sorted — including ADS+'s
  // query-time refinement splits.
  void SortLeafByIds(size_t segments) {
    if (!is_leaf) return;
    SortLeafPayloadByIds(&series_ids, &leaf_words, segments);
  }
};

}  // namespace hydra

#endif  // HYDRA_INDEX_ISAX_ISAX_NODE_H_
