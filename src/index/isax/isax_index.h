#ifndef HYDRA_INDEX_ISAX_ISAX_INDEX_H_
#define HYDRA_INDEX_ISAX_ISAX_INDEX_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/distance_histogram.h"
#include "index/answer_set.h"
#include "index/index.h"
#include "index/isax/isax_node.h"
#include "storage/buffer_manager.h"
#include "transform/sax.h"

namespace hydra {

class ParallelLeafScanner;  // exec/parallel_scanner.h

// iSAX2+ (Camerra et al. 2014) extended with the paper's ng / ε / δ-ε
// search modes. Series are encoded once at full cardinality (bulk
// loading); the tree grows by binary splits that promote the cardinality
// of one segment at a time. The root fans out on the first bit of every
// segment, as in the original index.
struct IsaxOptions {
  size_t segments = 16;
  size_t max_bits = 8;  // full cardinality 2^max_bits = 256
  size_t leaf_capacity = 64;
  size_t histogram_pairs = 20000;
  size_t histogram_bins = 512;
  uint64_t histogram_seed = 42;
};

class IsaxIndex : public Index {
 public:
  static Result<std::unique_ptr<IsaxIndex>> Build(
      const Dataset& data, SeriesProvider* provider,
      const IsaxOptions& options = {});

  std::string name() const override { return "isax2plus"; }
  IndexCapabilities capabilities() const override {
    IndexCapabilities c;
    c.exact = true;
    c.ng_approximate = true;
    c.epsilon_approximate = true;
    c.delta_epsilon_approximate = true;
    c.disk_resident = true;
    c.batched_queries = true;
    c.summarization = "iSAX";
    return c;
  }
  size_t MemoryBytes() const override;

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

  // Exact-mode members co-traverse the tree in one best-first walk with
  // shared lower-bound computation and one scan per leaf for the queries
  // it survives (index/batch_tree_search.h); approximate-mode members run
  // their own solo Search inside the batch.
  std::vector<Result<KnnAnswer>> BatchSearch(
      std::span<const BatchQuery> batch) const override;

  // r-range query (paper Definition 2); see DSTreeIndex::RangeSearch.
  Result<KnnAnswer> RangeSearch(std::span<const float> query, double radius,
                                double epsilon,
                                QueryCounters* counters) const;

  // Persistence: structure + δ-histogram only, raw data stays with the
  // provider (see DSTreeIndex::Save for the contract).
  Status Save(const std::string& path) const;
  static Result<std::unique_ptr<IsaxIndex>> Load(const std::string& path,
                                                 SeriesProvider* provider);

  // --- TreeKnnSearch interface ---
  struct QueryContext {
    std::vector<double> paa;
  };
  // Builds the per-query context consumed by the generic tree algorithms
  // (TreeKnnSearch, IncrementalKnnStream, ProgressiveKnnSearch).
  QueryContext MakeQueryContext(std::span<const float> query) const {
    return {encoder_->paa().Transform(query)};
  }
  // The conceptual root is not materialized; the search roots are its
  // lazily-created first-level children.
  std::vector<int32_t> SearchRoots() const { return root_children_; }
  bool IsLeaf(int32_t id) const { return nodes_[id].is_leaf; }
  std::vector<int32_t> NodeChildren(int32_t id) const;
  double MinDistSq(const QueryContext& ctx, int32_t id) const;
  Status ScanLeaf(int32_t id, ParallelLeafScanner* scanner) const;
  // Readahead hint for a queued leaf (tree_search.h): announces up to
  // max_pages pages of the leaf's (sorted) id runs to the provider's
  // prefetcher. Returns pages announced.
  size_t PrefetchLeaf(int32_t id, ParallelLeafScanner* scanner,
                      size_t max_pages) const;
  // A leaf's candidate ids (sorted ascending at build/load), for the
  // batched co-traversal's shared leaf scans (batch_tree_search.h).
  std::span<const int64_t> LeafIds(int32_t id) const {
    return nodes_[id].series_ids;
  }

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;
  const SaxEncoder& encoder() const { return *encoder_; }

 private:
  IsaxIndex(SeriesProvider* provider, const IsaxOptions& options)
      : provider_(provider), options_(options) {}

  void Insert(int64_t id, const std::vector<uint16_t>& word);
  void SplitLeaf(int32_t node_id);
  // Packs the first bit of every segment's symbol: the root fanout key.
  uint64_t RootKey(const std::vector<uint16_t>& word) const;
  // The next (bits[s]+1)-th bit of the symbol in segment s.
  static int NextBit(uint16_t symbol, uint8_t used_bits, size_t max_bits) {
    return (symbol >> (max_bits - used_bits - 1)) & 1;
  }

  SeriesProvider* provider_;  // not owned
  IsaxOptions options_;
  std::unique_ptr<SaxEncoder> encoder_;
  std::vector<IsaxNode> nodes_;
  std::unordered_map<uint64_t, int32_t> root_map_;
  std::vector<int32_t> root_children_;
  std::unique_ptr<DistanceHistogram> histogram_;
  size_t series_length_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_ISAX_ISAX_INDEX_H_
