#include "index/isax/isax_index.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "index/batch_tree_search.h"
#include "index/leaf_scanner.h"
#include "index/tree_search.h"
#include "storage/serialize.h"

namespace hydra {

Result<std::unique_ptr<IsaxIndex>> IsaxIndex::Build(
    const Dataset& data, SeriesProvider* provider,
    const IsaxOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (provider == nullptr || provider->num_series() != data.size() ||
      provider->series_length() != data.length()) {
    return Status::InvalidArgument("provider does not match dataset");
  }
  if (options.segments == 0 || options.segments > 64) {
    return Status::InvalidArgument("segments must be in [1, 64]");
  }
  if (options.max_bits == 0 || options.max_bits > 16) {
    return Status::InvalidArgument("max_bits must be in [1, 16]");
  }
  if (options.leaf_capacity == 0) {
    return Status::InvalidArgument("leaf_capacity must be > 0");
  }
  std::unique_ptr<IsaxIndex> index(new IsaxIndex(provider, options));
  index->series_length_ = data.length();
  index->encoder_ = std::make_unique<SaxEncoder>(
      data.length(), options.segments, options.max_bits);

  // Bulk load: encode everything first (one summarization pass), then
  // insert ids+words only — the in-core analog of iSAX2+'s staged load.
  for (size_t i = 0; i < data.size(); ++i) {
    index->Insert(static_cast<int64_t>(i),
                  index->encoder_->Encode(data.series(i)));
  }
  // Leaf ids sorted once at build time: consecutive ids coalesce into
  // contiguous runs that ride the SIMD batch kernel and the buffer
  // pool's sequential readahead (index/leaf_scanner.h). Ascending bulk
  // load plus order-preserving splits leave leaves sorted already, so
  // this is a guarantee (and a no-op check), not a pass.
  for (IsaxNode& node : index->nodes_) {
    node.SortLeafByIds(options.segments);
  }

  Rng rng(options.histogram_seed);
  index->histogram_ = std::make_unique<DistanceHistogram>(
      data, options.histogram_pairs, options.histogram_bins, rng);
  return index;
}

uint64_t IsaxIndex::RootKey(const std::vector<uint16_t>& word) const {
  uint64_t key = 0;
  for (size_t s = 0; s < word.size(); ++s) {
    key = (key << 1) |
          static_cast<uint64_t>((word[s] >> (options_.max_bits - 1)) & 1);
  }
  return key;
}

void IsaxIndex::Insert(int64_t id, const std::vector<uint16_t>& word) {
  // Locate (or create) the first-level child for this word.
  uint64_t key = RootKey(word);
  auto it = root_map_.find(key);
  int32_t node_id;
  if (it == root_map_.end()) {
    IsaxNode node;
    node.word = word;
    node.bits.assign(options_.segments, 1);
    node_id = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(std::move(node));
    root_map_[key] = node_id;
    root_children_.push_back(node_id);
  } else {
    node_id = it->second;
  }

  while (true) {
    IsaxNode& node = nodes_[node_id];
    ++node.count;
    if (node.is_leaf) break;
    int bit = NextBit(word[node.split_segment], node.bits[node.split_segment],
                      options_.max_bits);
    node_id = bit == 0 ? node.left : node.right;
  }
  IsaxNode& leaf = nodes_[node_id];
  leaf.series_ids.push_back(id);
  leaf.leaf_words.insert(leaf.leaf_words.end(), word.begin(), word.end());
  if (leaf.series_ids.size() > options_.leaf_capacity) {
    SplitLeaf(node_id);
  }
}

void IsaxIndex::SplitLeaf(int32_t node_id) {
  const size_t segs = options_.segments;
  const size_t n = nodes_[node_id].series_ids.size();

  // Split policy (iSAX 2.0's improved policy, in spirit): among segments
  // that can still be promoted, choose the one whose next bit divides the
  // buffered series most evenly; unsplittable or one-sided segments lose.
  size_t best_seg = segs;
  double best_balance = -1.0;
  {
    const IsaxNode& leaf = nodes_[node_id];
    for (size_t s = 0; s < segs; ++s) {
      if (leaf.bits[s] >= options_.max_bits) continue;
      size_t ones = 0;
      for (size_t i = 0; i < n; ++i) {
        ones += NextBit(leaf.leaf_words[i * segs + s], leaf.bits[s],
                        options_.max_bits);
      }
      if (ones == 0 || ones == n) continue;
      double frac = static_cast<double>(ones) / static_cast<double>(n);
      double balance = 1.0 - std::abs(frac - 0.5) * 2.0;  // 1 = even split
      if (balance > best_balance) {
        best_balance = balance;
        best_seg = s;
      }
    }
  }
  if (best_seg == segs) {
    // All promotable segments are one-sided at every remaining bit (e.g.
    // duplicate series): let the leaf exceed capacity.
    return;
  }

  IsaxNode left, right;
  {
    const IsaxNode& leaf = nodes_[node_id];
    left.word = leaf.word;
    left.bits = leaf.bits;
    left.bits[best_seg] += 1;
    right.word = leaf.word;
    right.bits = left.bits;
    // Children's words must carry the promoted bit: clear/set it so that
    // SymbolRegion decodes the right interval.
    const uint16_t bitmask = static_cast<uint16_t>(
        1 << (options_.max_bits - left.bits[best_seg]));
    left.word[best_seg] &= static_cast<uint16_t>(~bitmask);
    right.word[best_seg] |= bitmask;

    for (size_t i = 0; i < n; ++i) {
      int bit = NextBit(leaf.leaf_words[i * segs + best_seg],
                        leaf.bits[best_seg], options_.max_bits);
      IsaxNode& child = bit == 0 ? left : right;
      child.series_ids.push_back(leaf.series_ids[i]);
      child.leaf_words.insert(child.leaf_words.end(),
                              leaf.leaf_words.begin() + i * segs,
                              leaf.leaf_words.begin() + (i + 1) * segs);
      ++child.count;
    }
  }

  int32_t left_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(std::move(left));
  int32_t right_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(std::move(right));

  IsaxNode& parent = nodes_[node_id];
  parent.is_leaf = false;
  parent.split_segment = static_cast<uint8_t>(best_seg);
  parent.left = left_id;
  parent.right = right_id;
  parent.series_ids.clear();
  parent.series_ids.shrink_to_fit();
  parent.leaf_words.clear();
  parent.leaf_words.shrink_to_fit();
}

std::vector<int32_t> IsaxIndex::NodeChildren(int32_t id) const {
  const IsaxNode& n = nodes_[id];
  std::vector<int32_t> out;
  if (n.left >= 0) out.push_back(n.left);
  if (n.right >= 0) out.push_back(n.right);
  return out;
}

double IsaxIndex::MinDistSq(const QueryContext& ctx, int32_t id) const {
  const IsaxNode& n = nodes_[id];
  return encoder_->MinDistSqPaaToSax(ctx.paa, n.word, n.bits);
}

Status IsaxIndex::ScanLeaf(int32_t id, ParallelLeafScanner* scanner) const {
  return scanner->ScanIds(provider_, nodes_[id].series_ids).status();
}

size_t IsaxIndex::PrefetchLeaf(int32_t id, ParallelLeafScanner* scanner,
                               size_t max_pages) const {
  return scanner->PrefetchIds(provider_, nodes_[id].series_ids, max_pages);
}

Result<KnnAnswer> IsaxIndex::Search(std::span<const float> query,
                                    const SearchParams& params,
                                    QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length mismatch");
  }
  QueryContext ctx;
  ctx.paa = encoder_->paa().Transform(query);
  double r_delta = 0.0;
  if (params.mode == SearchMode::kDeltaEpsilon && params.delta < 1.0) {
    r_delta = histogram_->DeltaRadius(params.delta, provider_->num_series());
  }
  return TreeKnnSearch(*this, ctx, query, params, r_delta, counters);
}

std::vector<Result<KnnAnswer>> IsaxIndex::BatchSearch(
    std::span<const BatchQuery> batch) const {
  return TreeIndexBatchSearch(*this, provider_, series_length_, batch);
}

Result<KnnAnswer> IsaxIndex::RangeSearch(std::span<const float> query,
                                         double radius, double epsilon,
                                         QueryCounters* counters) const {
  if (radius < 0.0 || epsilon < 0.0) {
    return Status::InvalidArgument("radius and epsilon must be >= 0");
  }
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length mismatch");
  }
  QueryContext ctx = MakeQueryContext(query);
  return TreeRangeSearch(*this, ctx, query, radius, epsilon, counters);
}

size_t IsaxIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const IsaxNode& n : nodes_) total += n.ApproxBytes();
  total += root_map_.size() * (sizeof(uint64_t) + sizeof(int32_t)) * 2;
  return total;
}

size_t IsaxIndex::num_leaves() const {
  size_t leaves = 0;
  for (const IsaxNode& n : nodes_) leaves += n.is_leaf ? 1 : 0;
  return leaves;
}


namespace {
constexpr uint32_t kIsaxMagic = 0x49534158;  // "ISAX"
constexpr uint32_t kIsaxVersion = 1;
}  // namespace

Status IsaxIndex::Save(const std::string& path) const {
  BinaryWriter w(path);
  if (!w.ok()) return Status::IoError("cannot open for write: " + path);
  w.WriteU32(kIsaxMagic);
  w.WriteU32(kIsaxVersion);
  w.WriteU64(series_length_);
  w.WriteU64(options_.segments);
  w.WriteU64(options_.max_bits);
  w.WriteU64(options_.leaf_capacity);

  w.WriteU64(nodes_.size());
  for (const IsaxNode& n : nodes_) {
    w.WriteVector(n.word);
    w.WriteVector(n.bits);
    w.WriteBool(n.is_leaf);
    w.WriteU32(n.split_segment);
    w.WriteI32(n.left);
    w.WriteI32(n.right);
    w.WriteU64(n.count);
    w.WriteVector(n.series_ids);
    w.WriteVector(n.leaf_words);
  }
  w.WriteVector(root_children_);
  std::vector<uint64_t> root_keys;
  std::vector<int32_t> root_values;
  root_keys.reserve(root_map_.size());
  root_values.reserve(root_map_.size());
  for (const auto& [key, value] : root_map_) {
    root_keys.push_back(key);
    root_values.push_back(value);
  }
  w.WriteVector(root_keys);
  w.WriteVector(root_values);

  DistanceHistogram::State hs = histogram_->ExportState();
  w.WriteVector(hs.cumulative_counts);
  w.WriteDouble(hs.min);
  w.WriteDouble(hs.max);
  w.WriteDouble(hs.total);
  return w.Close();
}

Result<std::unique_ptr<IsaxIndex>> IsaxIndex::Load(const std::string& path,
                                                   SeriesProvider* provider) {
  if (provider == nullptr) {
    return Status::InvalidArgument("provider must not be null");
  }
  BinaryReader r(path);
  if (!r.ok()) return Status::IoError("cannot open for read: " + path);
  if (r.ReadU32() != kIsaxMagic) {
    return Status::InvalidArgument("not an isax index file: " + path);
  }
  if (r.ReadU32() != kIsaxVersion) {
    return Status::InvalidArgument("unsupported isax version: " + path);
  }
  IsaxOptions options;
  uint64_t series_length = r.ReadU64();
  options.segments = r.ReadU64();
  options.max_bits = r.ReadU64();
  options.leaf_capacity = r.ReadU64();
  if (provider->series_length() != series_length) {
    return Status::FailedPrecondition(
        "provider series length does not match saved index");
  }

  std::unique_ptr<IsaxIndex> index(new IsaxIndex(provider, options));
  index->series_length_ = series_length;
  index->encoder_ = std::make_unique<SaxEncoder>(
      series_length, options.segments, options.max_bits);
  uint64_t num_nodes = r.ReadU64();
  index->nodes_.reserve(num_nodes);
  for (uint64_t i = 0; i < num_nodes && r.ok(); ++i) {
    IsaxNode n;
    n.word = r.ReadVector<uint16_t>();
    n.bits = r.ReadVector<uint8_t>();
    n.is_leaf = r.ReadBool();
    n.split_segment = static_cast<uint8_t>(r.ReadU32());
    n.left = r.ReadI32();
    n.right = r.ReadI32();
    n.count = r.ReadU64();
    n.series_ids = r.ReadVector<int64_t>();
    n.leaf_words = r.ReadVector<uint16_t>();
    n.SortLeafByIds(options.segments);  // run-coalescing invariant
    index->nodes_.push_back(std::move(n));
  }
  index->root_children_ = r.ReadVector<int32_t>();
  std::vector<uint64_t> root_keys = r.ReadVector<uint64_t>();
  std::vector<int32_t> root_values = r.ReadVector<int32_t>();
  if (root_keys.size() != root_values.size()) {
    return Status::InvalidArgument("corrupt root map in " + path);
  }
  for (size_t i = 0; i < root_keys.size(); ++i) {
    index->root_map_[root_keys[i]] = root_values[i];
  }

  DistanceHistogram::State hs;
  hs.cumulative_counts = r.ReadVector<double>();
  hs.min = r.ReadDouble();
  hs.max = r.ReadDouble();
  hs.total = r.ReadDouble();
  HYDRA_RETURN_IF_ERROR(r.status());
  index->histogram_ = std::make_unique<DistanceHistogram>(
      DistanceHistogram::FromState(std::move(hs)));
  if (index->nodes_.empty()) {
    return Status::InvalidArgument("saved index has no nodes");
  }
  return index;
}

}  // namespace hydra
