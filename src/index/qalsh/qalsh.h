#ifndef HYDRA_INDEX_QALSH_QALSH_H_
#define HYDRA_INDEX_QALSH_QALSH_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "index/index.h"
#include "storage/buffer_manager.h"

namespace hydra {

// QALSH (Huang et al. 2015): query-aware locality-sensitive hashing.
// Each of m hash functions is a 1-D Gaussian projection h_i(x) = <a_i, x>
// kept as a sorted array (the in-memory stand-in for the original's
// B+-trees). No random shift is applied at build time: the *query* value
// h_i(q) anchors the bucket, which is what "query-aware" means.
//
// Search expands a window of half-width w·c^r / 2 around each anchor
// (virtual rehashing doubles the radius c each round), counts collisions,
// and refines any point that collides in at least l of the m projections.
// Termination: either enough refined candidates (β·n + k − 1) or the
// bsf is within the current search radius guarantee (bsf <= c^r ·
// base radius), yielding the δ-ε contract.
struct QalshOptions {
  size_t num_hashes = 32;        // m
  double collision_ratio = 0.4;  // l = ceil(ratio · m)
  double bucket_width = 1.0;     // w, in units of projection std
  double approximation_c = 2.0;  // radius growth per virtual rehash
  double beta = 0.05;            // candidate budget fraction
  uint64_t seed = 31;
};

class QalshIndex : public Index {
 public:
  static Result<std::unique_ptr<QalshIndex>> Build(
      const Dataset& data, SeriesProvider* provider,
      const QalshOptions& options = {});

  std::string name() const override { return "qalsh"; }
  IndexCapabilities capabilities() const override {
    IndexCapabilities c;
    c.ng_approximate = true;
    c.delta_epsilon_approximate = true;
    c.disk_resident = false;  // evaluated in-memory only, as in the paper
    c.summarization = "LSH signatures";
    return c;
  }
  size_t MemoryBytes() const override;

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

 private:
  QalshIndex(SeriesProvider* provider, const QalshOptions& options)
      : provider_(provider), options_(options) {}

  SeriesProvider* provider_;  // not owned
  QalshOptions options_;
  std::vector<std::vector<float>> hash_dirs_;  // m × dim projection rows
  // Per hash: (projection value, id) sorted by value.
  std::vector<std::vector<std::pair<float, int64_t>>> tables_;
  double projection_scale_ = 1.0;  // normalizes w across dimensionalities
  size_t series_length_ = 0;
  size_t num_series_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_QALSH_QALSH_H_
