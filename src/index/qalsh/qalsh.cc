#include "index/qalsh/qalsh.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "index/answer_set.h"
#include "exec/parallel_scanner.h"

namespace hydra {

Result<std::unique_ptr<QalshIndex>> QalshIndex::Build(
    const Dataset& data, SeriesProvider* provider,
    const QalshOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (provider == nullptr || provider->num_series() != data.size() ||
      provider->series_length() != data.length()) {
    return Status::InvalidArgument("provider does not match dataset");
  }
  if (options.num_hashes == 0) {
    return Status::InvalidArgument("num_hashes must be > 0");
  }
  std::unique_ptr<QalshIndex> index(new QalshIndex(provider, options));
  index->series_length_ = data.length();
  index->num_series_ = data.size();

  Rng rng(options.seed);
  const size_t m = options.num_hashes;
  index->hash_dirs_.resize(m);
  index->tables_.resize(m);
  for (size_t h = 0; h < m; ++h) {
    index->hash_dirs_[h].resize(data.length());
    for (float& v : index->hash_dirs_[h]) {
      v = static_cast<float>(rng.NextGaussian());
    }
  }

  // Projection magnitudes grow with sqrt(dim); scale the bucket width by
  // the empirical std of projections so `bucket_width` is dimensionless.
  double sum2 = 0.0;
  size_t samples = 0;
  for (size_t h = 0; h < m; ++h) {
    auto& table = index->tables_[h];
    table.resize(data.size());
    const auto& dir = index->hash_dirs_[h];
    for (size_t i = 0; i < data.size(); ++i) {
      auto s = data.series(i);
      double proj = 0.0;
      for (size_t d = 0; d < s.size(); ++d) {
        proj += static_cast<double>(dir[d]) * s[d];
      }
      table[i] = {static_cast<float>(proj), static_cast<int64_t>(i)};
      sum2 += proj * proj;
      ++samples;
    }
    std::sort(table.begin(), table.end());
  }
  index->projection_scale_ =
      samples > 0 ? std::sqrt(sum2 / static_cast<double>(samples)) : 1.0;
  if (index->projection_scale_ <= 0.0) index->projection_scale_ = 1.0;
  return index;
}

Result<KnnAnswer> QalshIndex::Search(std::span<const float> query,
                                     const SearchParams& params,
                                     QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length mismatch");
  }
  if (params.mode == SearchMode::kExact) {
    return Status::Unimplemented("qalsh does not support exact search");
  }
  const size_t m = options_.num_hashes;
  const size_t l = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(options_.collision_ratio * static_cast<double>(m))));
  const double c = std::max(options_.approximation_c, 1.0001);
  const double one_plus_eps =
      params.mode == SearchMode::kDeltaEpsilon ? 1.0 + params.epsilon : 1.0;

  // Query anchors and bidirectional cursors per table.
  std::vector<double> anchors(m);
  for (size_t h = 0; h < m; ++h) {
    const auto& dir = hash_dirs_[h];
    double proj = 0.0;
    for (size_t d = 0; d < query.size(); ++d) {
      proj += static_cast<double>(dir[d]) * query[d];
    }
    anchors[h] = proj;
  }
  struct Cursor {
    size_t left;   // next index to the left (one past; 0 = exhausted)
    size_t right;  // next index to the right
  };
  std::vector<Cursor> cursors(m);
  for (size_t h = 0; h < m; ++h) {
    const auto& table = tables_[h];
    size_t pos = static_cast<size_t>(
        std::lower_bound(table.begin(), table.end(),
                         std::make_pair(static_cast<float>(anchors[h]),
                                        std::numeric_limits<int64_t>::min())) -
        table.begin());
    cursors[h] = {pos, pos};
  }

  std::vector<uint8_t> collisions(num_series_, 0);
  std::vector<uint8_t> refined(num_series_, 0);
  size_t budget = static_cast<size_t>(options_.beta *
                                      static_cast<double>(num_series_)) +
                  params.k;
  if (params.mode == SearchMode::kNgApproximate && params.nprobe > 0) {
    budget = std::max<size_t>(params.k, params.nprobe);
  }

  AnswerSet answers(params.k);
  size_t probed = 0;
  double radius = options_.bucket_width * projection_scale_ * 0.5;

  // Candidates are *collected* during the collision sweeps (which is what
  // decides the refined set and charges the budget, exactly as a serial
  // refine-on-the-spot would) and *evaluated* as one batch per round,
  // which the scanner fans across workers. Distances never influence the
  // sweeps, only the per-round δ-ε termination check below, so answers
  // are identical to num_threads = 1.
  ParallelLeafScanner scanner(query, &answers, counters, params.num_threads,
                              params.pin_budget, ResolvePrefetchDepth(params),
                              ResolveCancellation(params));
  std::vector<int64_t> round_ids;
  auto refine = [&](int64_t id) -> Status {
    if (probed >= budget || refined[id]) return Status::OK();
    refined[id] = 1;
    round_ids.push_back(id);
    ++probed;
    return Status::OK();
  };

  // Virtual rehashing: rounds with radius w/2 · c^round.
  const size_t max_rounds = 64;
  for (size_t round = 0; round < max_rounds && probed < budget; ++round) {
    double half_width = radius * std::pow(c, static_cast<double>(round));
    for (size_t h = 0; h < m && probed < budget; ++h) {
      const auto& table = tables_[h];
      Cursor& cur = cursors[h];
      // Sweep right.
      while (cur.right < table.size() &&
             table[cur.right].first <= anchors[h] + half_width) {
        int64_t id = table[cur.right].second;
        if (++collisions[id] == l) {
          HYDRA_RETURN_IF_ERROR(refine(id));
          if (probed >= budget) break;
        }
        ++cur.right;
      }
      // Sweep left.
      while (cur.left > 0 &&
             table[cur.left - 1].first >= anchors[h] - half_width) {
        int64_t id = table[cur.left - 1].second;
        if (++collisions[id] == l) {
          HYDRA_RETURN_IF_ERROR(refine(id));
          if (probed >= budget) break;
        }
        --cur.left;
      }
    }
    // Evaluate the round's collected candidates before the termination
    // check below reads the updated best-so-far.
    if (!round_ids.empty()) {
      HYDRA_RETURN_IF_ERROR(scanner.ScanIds(provider_, round_ids).status());
      round_ids.clear();
    }
    // δ-ε termination: the bsf already beats what a larger radius could
    // guarantee to improve by more than the (1+ε) factor.
    if (answers.full()) {
      double r_true = half_width / projection_scale_ *
                      std::sqrt(static_cast<double>(series_length_));
      double bound = one_plus_eps * r_true;
      if (std::sqrt(answers.KthDistanceSq()) <= bound &&
          params.mode == SearchMode::kDeltaEpsilon) {
        break;
      }
    }
  }
  return answers.Finish();
}

size_t QalshIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const auto& d : hash_dirs_) total += d.size() * sizeof(float);
  for (const auto& t : tables_) {
    total += t.size() * (sizeof(float) + sizeof(int64_t));
  }
  return total;
}

}  // namespace hydra
