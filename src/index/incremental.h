#ifndef HYDRA_INDEX_INCREMENTAL_H_
#define HYDRA_INDEX_INCREMENTAL_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <queue>
#include <span>
#include <vector>

#include "common/counters.h"
#include "exec/parallel_scanner.h"
#include "index/answer_set.h"
#include "index/index.h"

namespace hydra {

// Incremental and progressive k-NN over the same tree interface used by
// TreeKnnSearch — the paper's two "future research directions" (§5):
//
//  * Incremental search returns neighbors one at a time, in distance
//    order, instead of all k at once ("the current approaches return the
//    k nearest neighbors all at once which impedes their interactivity").
//    Implementation: the Hjaltason–Samet algorithm — one priority queue
//    holds both index nodes (keyed by lower bound) and concrete series
//    (keyed by true distance); when a series surfaces before every
//    remaining node, it is provably the next nearest. An ε relaxation
//    divides object keys by (1+ε), making each emission ε-approximate.
//
//  * Progressive search runs a normal best-first search but reports every
//    improvement of the running k-NN set through a callback, so a caller
//    can render increasingly accurate answers until the search completes
//    exactly.
template <typename Tree, typename Ctx>
class IncrementalKnnStream {
 public:
  // The stream borrows tree/ctx/query; they must outlive it.
  IncrementalKnnStream(const Tree& tree, const Ctx& ctx,
                       std::span<const float> query, double epsilon,
                       QueryCounters* counters)
      : tree_(tree),
        ctx_(ctx),
        query_(query),
        relax_(1.0 / ((1.0 + epsilon) * (1.0 + epsilon))),
        counters_(counters) {
    for (auto root : tree_.SearchRoots()) {
      Push(Entry::Node(tree_.MinDistSq(ctx_, root), root));
      if (counters_ != nullptr) ++counters_->lb_distances;
    }
  }

  // Returns the next neighbor in (ε-relaxed) distance order, or false
  // when the collection is exhausted — or when a leaf scan failed, in
  // which case status() is non-OK and the stream stays dry (an emission
  // after a dropped leaf could be out of order).
  bool Next(int64_t* id, double* distance) {
    while (status_.ok() && !queue_.empty()) {
      Entry top = queue_.top();
      queue_.pop();
      if (top.is_object) {
        *id = top.id;
        *distance = std::sqrt(top.dist_sq);
        return true;
      }
      if (tree_.IsLeaf(top.node)) {
        ScanLeaf(top.node);
      } else {
        for (auto child : tree_.NodeChildren(top.node)) {
          Push(Entry::Node(tree_.MinDistSq(ctx_, child), child));
          if (counters_ != nullptr) ++counters_->lb_distances;
        }
      }
    }
    return false;
  }

  // OK while every consumed leaf scanned cleanly; the first fetch error
  // (exhausted buffer pool, read failure) parks here and ends the stream.
  const Status& status() const { return status_; }

 private:
  struct Entry {
    double key;      // priority: lb² for nodes, dist²·relax for objects
    double dist_sq;  // true squared distance (objects only)
    bool is_object;
    int64_t id;      // object id
    typename std::decay_t<decltype(std::declval<Tree>().SearchRoots())>::
        value_type node;  // node id (nodes only)

    static Entry Node(double lb_sq, decltype(node) n) {
      Entry e{};
      e.key = lb_sq;
      e.is_object = false;
      e.node = n;
      return e;
    }
    static Entry Object(double key, double dist_sq, int64_t id) {
      Entry e{};
      e.key = key;
      e.dist_sq = dist_sq;
      e.is_object = true;
      e.id = id;
      return e;
    }
    bool operator>(const Entry& o) const { return key > o.key; }
  };

  void Push(Entry e) {
    queue_.push(e);
    if (counters_ != nullptr) ++counters_->nodes_pushed;
  }

  void ScanLeaf(decltype(Entry{}.node) node) {
    // Collect the leaf's series as object entries via a throwaway
    // AnswerSet sized to the leaf (ScanLeaf's interface is heap-based).
    // Incremental streams hand out one neighbor at a time, so leaf scans
    // stay serial (num_threads = 1).
    AnswerSet scratch(std::numeric_limits<size_t>::max() / 2);
    ParallelLeafScanner scratch_scanner(query_, &scratch, counters_, 1);
    Status st = tree_.ScanLeaf(node, &scratch_scanner);
    if (!st.ok()) {
      status_ = std::move(st);
      return;
    }
    if (counters_ != nullptr) ++counters_->leaves_visited;
    KnnAnswer all = scratch.Finish();
    for (size_t i = 0; i < all.size(); ++i) {
      double d_sq = all.distances[i] * all.distances[i];
      Push(Entry::Object(d_sq * relax_, d_sq, all.ids[i]));
    }
  }

  const Tree& tree_;
  const Ctx& ctx_;
  std::span<const float> query_;
  double relax_;
  QueryCounters* counters_;
  Status status_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
};

// Progress report: fired every time the running k-NN set improves.
struct ProgressiveUpdate {
  KnnAnswer current;        // the improved k-NN set so far
  uint64_t improvements;    // 1 for the first report, 2 for the next, ...
  bool final;               // true on the last (exact) report
};
using ProgressiveCallback = std::function<void(const ProgressiveUpdate&)>;

// Exact best-first k-NN that reports intermediate result sets. The final
// callback invocation (final = true) carries the exact answer. A failed
// leaf scan (exhausted buffer pool, read error) propagates as the
// stream's error status — the partial set already reported through the
// callback is never promoted to a final/exact answer.
template <typename Tree, typename Ctx>
Result<KnnAnswer> ProgressiveKnnSearch(const Tree& tree, const Ctx& ctx,
                                       std::span<const float> query, size_t k,
                                       const ProgressiveCallback& callback,
                                       QueryCounters* counters) {
  IncrementalKnnStream<Tree, Ctx> stream(tree, ctx, query, /*epsilon=*/0.0,
                                         counters);
  // Consuming the incremental stream yields neighbors best-first, so each
  // emission *appends* to the running set; every prefix is an improvement.
  KnnAnswer running;
  uint64_t improvements = 0;
  int64_t id;
  double distance;
  while (running.size() < k && stream.Next(&id, &distance)) {
    running.ids.push_back(id);
    running.distances.push_back(distance);
    ++improvements;
    if (callback) {
      callback({running, improvements, running.size() == k});
    }
  }
  HYDRA_RETURN_IF_ERROR(stream.status());
  if (callback && running.size() < k && improvements > 0) {
    // Collection smaller than k: re-fire the last state as final.
    callback({running, improvements, true});
  }
  return running;
}

}  // namespace hydra

#endif  // HYDRA_INDEX_INCREMENTAL_H_
