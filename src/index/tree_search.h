#ifndef HYDRA_INDEX_TREE_SEARCH_H_
#define HYDRA_INDEX_TREE_SEARCH_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/counters.h"
#include "exec/parallel_scanner.h"
#include "index/answer_set.h"
#include "index/index.h"

namespace hydra {

// Index-invariant best-first k-NN over a hierarchical index, implementing
// the paper's Algorithm 1 (exact), its ng-approximate restriction (visit
// at most nprobe leaves), and Algorithm 2 (δ-ε-approximate: prune against
// bsf/(1+ε) and stop early once bsf <= (1+ε)·r_δ). One code path serves
// all modes: exact is δ = 1, ε = 0; ng-approximate is the same loop with
// a leaf budget instead of guarantee-based pruning relaxation.
//
// `Tree` must provide:
//   using NodeId = int64_t (or convertible);
//   std::vector<NodeId> SearchRoots() const;
//   bool IsLeaf(NodeId) const;
//   std::vector<NodeId> NodeChildren(NodeId) const;
//   double MinDistSq(const Ctx&, NodeId) const;         // admissible LB²
//   Status ScanLeaf(NodeId, ParallelLeafScanner*) const;
//
// ScanLeaf receives the query-lifetime scanner (bound to the query, the
// answer set and the counters) and feeds it the leaf's candidate ids; the
// scanner fans them across workers when SearchParams::num_threads > 1 and
// merges before returning, so the best-first loop always observes an
// up-to-date k-th distance between leaves. A non-OK ScanLeaf status (an
// exhausted buffer pool, a real read error) aborts the search and
// propagates — a leaf silently dropped could hold a true neighbor, so
// degraded answers are never returned as if they were exact.
//
// Optionally, `Tree` may also provide
//   size_t PrefetchLeaf(NodeId, ParallelLeafScanner*, size_t max_pages);
// (detected at compile time): with SearchParams::prefetch_depth > 0, the
// search announces the best-priority leaves still waiting in the
// priority queue to the provider's background prefetcher while the
// current leaf scans, so the likely-next leaves' pages are already
// resident when the loop reaches them. The hint never changes which
// leaves are visited or what any scan returns — prefetch only warms the
// cache — so answers are identical at every depth.
//
// `Ctx` is whatever per-query precomputation the index needs (query PAA,
// prefix sums, ...), built by the caller.
template <typename Tree, typename Ctx>
Result<KnnAnswer> TreeKnnSearch(const Tree& tree, const Ctx& ctx,
                                std::span<const float> query,
                                const SearchParams& params,
                                double delta_radius,
                                QueryCounters* counters) {
  struct Entry {
    double lb_sq;
    typename std::decay_t<decltype(tree.SearchRoots())>::value_type node;
    bool operator>(const Entry& o) const { return lb_sq > o.lb_sq; }
  };
  using NodeId = decltype(Entry::node);

  AnswerSet answers(params.k);
  const bool ng = params.mode == SearchMode::kNgApproximate;
  const double one_plus_eps =
      params.mode == SearchMode::kDeltaEpsilon ? 1.0 + params.epsilon : 1.0;
  const double prune_shrink = 1.0 / (one_plus_eps * one_plus_eps);
  // Early-stop threshold from the δ-radius: ((1+ε)·r_δ)².
  const double stop_sq = params.mode == SearchMode::kDeltaEpsilon
                             ? (one_plus_eps * delta_radius) *
                                   (one_plus_eps * delta_radius)
                             : 0.0;
  const size_t leaf_budget =
      ng ? (params.nprobe == 0 ? 1 : params.nprobe)
         : std::numeric_limits<size_t>::max();

  const size_t prefetch_depth = ResolvePrefetchDepth(params);
  // One token per query, threaded through every scan and prefetch this
  // search issues: leaf scans check it at page boundaries, and the loop
  // below checks it at node pops, so a deadline or external Cancel()
  // surfaces within one leaf-chunk of work.
  std::shared_ptr<CancellationToken> cancel = ResolveCancellation(params);
  ParallelLeafScanner scanner(query, &answers, counters, params.num_threads,
                              params.pin_budget, prefetch_depth, cancel);
  // Min-heap on a plain vector (std::push_heap/pop_heap) instead of
  // std::priority_queue: the readahead below needs to PEEK at the
  // best-priority pending entries, which priority_queue hides. heap[0] is
  // the minimum; the shallow prefix of the array is biased toward small
  // lower bounds, which is all a cache hint needs.
  std::vector<Entry> heap;
  auto heap_push = [&heap](Entry e) {
    heap.push_back(e);
    std::push_heap(heap.begin(), heap.end(), std::greater<Entry>{});
  };
  auto heap_pop = [&heap] {
    std::pop_heap(heap.begin(), heap.end(), std::greater<Entry>{});
    Entry top = heap.back();
    heap.pop_back();
    return top;
  };
  for (NodeId root : tree.SearchRoots()) {
    double lb = tree.MinDistSq(ctx, root);
    if (counters != nullptr) {
      ++counters->lb_distances;
      ++counters->nodes_pushed;
    }
    heap_push({lb, root});
  }

  // Announces the most promising leaves still queued (up to
  // prefetch_depth pages' worth) so their reads overlap the scan of the
  // node currently being processed. Purely advisory: never touches the
  // answer state. `announced` remembers what earlier iterations already
  // handed the prefetcher, so a leaf that lingers near the top of the
  // heap is not re-announced (and its pages' residency re-probed) on
  // every pop — the heap-side analog of the scanners' half-window
  // re-announce throttle.
  std::unordered_set<int64_t> announced;
  auto prefetch_queued_leaves = [&] {
    if constexpr (requires {
                    tree.PrefetchLeaf(heap[0].node, &scanner, size_t{1});
                  }) {
      if (prefetch_depth == 0 || heap.empty()) return;
      size_t budget = prefetch_depth;
      // Scan a shallow prefix of the heap array; entries there are the
      // best candidates without paying for a full ordering.
      const size_t window = std::min(heap.size(), 4 * prefetch_depth);
      const double prune_sq = answers.KthDistanceSq() * prune_shrink;
      for (size_t i = 0; i < window && budget > 0; ++i) {
        if (heap[i].lb_sq > prune_sq) continue;  // will be pruned anyway
        if (!tree.IsLeaf(heap[i].node)) continue;
        const int64_t key = static_cast<int64_t>(heap[i].node);
        if (!announced.insert(key).second) continue;  // already announced
        const size_t announced_pages =
            tree.PrefetchLeaf(heap[i].node, &scanner, budget);
        budget -= std::min(budget, announced_pages);
      }
    }
  };

  // Initial ng-approximate descent (paper Algorithm 1, line 6): greedily
  // follow the min-LB child to one leaf to obtain a baseline bsf.
  size_t leaves_visited = 0;
  NodeId descent_leaf = NodeId{-1};
  if (!heap.empty()) {
    if (cancel != nullptr) {
      HYDRA_RETURN_IF_ERROR(cancel->Check());
    }
    NodeId node = heap[0].node;
    while (!tree.IsLeaf(node)) {
      double best = std::numeric_limits<double>::infinity();
      NodeId best_child = NodeId{-1};
      for (NodeId child : tree.NodeChildren(node)) {
        double lb = tree.MinDistSq(ctx, child);
        if (counters != nullptr) ++counters->lb_distances;
        if (lb < best) {
          best = lb;
          best_child = child;
        }
      }
      if (best_child == NodeId{-1}) break;  // childless internal node
      node = best_child;
    }
    if (tree.IsLeaf(node)) {
      HYDRA_RETURN_IF_ERROR(tree.ScanLeaf(node, &scanner));
      if (counters != nullptr) ++counters->leaves_visited;
      ++leaves_visited;
      descent_leaf = node;
    }
  }

  while (!heap.empty() && leaves_visited < leaf_budget) {
    // Cancellation point: once per node pop, so an expired deadline stops
    // the best-first loop even when every remaining node is pruned
    // without touching the (token-checking) scan path.
    if (cancel != nullptr) {
      HYDRA_RETURN_IF_ERROR(cancel->Check());
    }
    Entry top = heap_pop();
    // Algorithm 2 line 10: stop when the closest unexplored region cannot
    // improve the (ε-relaxed) bsf.
    if (top.lb_sq > answers.KthDistanceSq() * prune_shrink) break;
    // The descent leaf was fully scanned before the loop. Checked before
    // IsLeaf: an adaptive index (ADS+) may have refined it into an
    // internal node since, and re-expanding it would rescan its series.
    if (top.node == descent_leaf) continue;
    if (tree.IsLeaf(top.node)) {
      // Warm the likely-next leaves while this one scans: their reads
      // proceed in the background through the pool's prefetch workers.
      prefetch_queued_leaves();
      HYDRA_RETURN_IF_ERROR(tree.ScanLeaf(top.node, &scanner));
      if (counters != nullptr) ++counters->leaves_visited;
      ++leaves_visited;
      // Algorithm 2 line 16: the δ-radius stopping condition.
      if (params.mode == SearchMode::kDeltaEpsilon && answers.full() &&
          answers.KthDistanceSq() <= stop_sq) {
        break;
      }
    } else {
      for (NodeId child : tree.NodeChildren(top.node)) {
        double lb = tree.MinDistSq(ctx, child);
        if (counters != nullptr) ++counters->lb_distances;
        if (lb <= answers.KthDistanceSq() * prune_shrink) {
          heap_push({lb, child});
          if (counters != nullptr) ++counters->nodes_pushed;
        }
      }
    }
  }
  return answers.Finish();
}

}  // namespace hydra

namespace hydra {

// Index-invariant r-range search (paper Definition 2): returns the series
// within distance `radius` of the query, ids sorted by distance.
//
// epsilon > 0 gives the ε-approximate variant of Definition 5: every
// returned series still satisfies d <= radius, but subtrees whose lower
// bound exceeds radius/(1+ε) are pruned, so borderline members in
// (radius/(1+ε), radius] may be missed — completeness is traded for
// speed, while the distance guarantee on returned results stays exact.
template <typename Tree, typename Ctx>
Result<KnnAnswer> TreeRangeSearch(const Tree& tree, const Ctx& ctx,
                                  std::span<const float> query, double radius,
                                  double epsilon, QueryCounters* counters) {
  using NodeId =
      typename std::decay_t<decltype(tree.SearchRoots())>::value_type;
  const double radius_sq = radius * radius;
  const double prune_sq =
      (radius / (1.0 + epsilon)) * (radius / (1.0 + epsilon));

  // Range search has no bsf to improve, so plain DFS (no ordering) is
  // optimal: every surviving node must be visited anyway.
  std::vector<NodeId> stack = tree.SearchRoots();
  // An unbounded AnswerSet collects every member; the radius filter is
  // applied when the set is finished. The scanner stays serial: with an
  // effectively unbounded k the k-th-distance bound never tightens, so a
  // fan-out would only pay merge costs.
  AnswerSet collector(std::numeric_limits<size_t>::max() / 2);
  ParallelLeafScanner scanner(query, &collector, counters, 1);
  while (!stack.empty()) {
    NodeId node = stack.back();
    stack.pop_back();
    double lb = tree.MinDistSq(ctx, node);
    if (counters != nullptr) ++counters->lb_distances;
    if (lb > prune_sq) continue;
    if (tree.IsLeaf(node)) {
      HYDRA_RETURN_IF_ERROR(tree.ScanLeaf(node, &scanner));
      if (counters != nullptr) ++counters->leaves_visited;
    } else {
      for (NodeId child : tree.NodeChildren(node)) stack.push_back(child);
    }
  }
  KnnAnswer all = collector.Finish();
  KnnAnswer result;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all.distances[i] > radius) break;  // sorted ascending
    result.ids.push_back(all.ids[i]);
    result.distances.push_back(all.distances[i]);
  }
  return result;
}

}  // namespace hydra

#endif  // HYDRA_INDEX_TREE_SEARCH_H_
