#include "index/index.h"

// Index is an interface; this translation unit anchors its vtable.

namespace hydra {}  // namespace hydra
