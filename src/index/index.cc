#include "index/index.h"

// Index is an interface; this translation unit anchors its vtable and
// holds the reference BatchSearch implementation.

namespace hydra {

std::vector<Result<KnnAnswer>> Index::BatchSearch(
    std::span<const BatchQuery> batch) const {
  // The reference semantics every batched override must reproduce: Q
  // independent Search() calls, each with its own params, counters, and
  // failure isolation.
  std::vector<Result<KnnAnswer>> results;
  results.reserve(batch.size());
  for (const BatchQuery& member : batch) {
    results.push_back(Search(member.query, member.params, member.counters));
  }
  return results;
}

}  // namespace hydra
