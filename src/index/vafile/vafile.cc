#include "index/vafile/vafile.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/rng.h"
#include "distance/simd_dispatch.h"
#include "index/answer_set.h"
#include "exec/parallel_scanner.h"

namespace hydra {

Result<std::unique_ptr<VaFileIndex>> VaFileIndex::Build(
    const Dataset& data, SeriesProvider* provider,
    const VaFileOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (provider == nullptr || provider->num_series() != data.size() ||
      provider->series_length() != data.length()) {
    return Status::InvalidArgument("provider does not match dataset");
  }
  if (options.num_features == 0) {
    return Status::InvalidArgument("num_features must be > 0");
  }
  std::unique_ptr<VaFileIndex> index(new VaFileIndex(provider, options));
  index->series_length_ = data.length();
  index->num_series_ = data.size();
  index->dft_ =
      std::make_unique<DftFeatures>(data.length(), options.num_features);
  const size_t f = index->dft_->num_features();

  // One pass: features of every series (kept transiently; only the cells
  // survive, that is the VA+ "approximation file").
  std::vector<double> features(data.size() * f);
  for (size_t i = 0; i < data.size(); ++i) {
    index->dft_->Transform(data.series(i),
                           std::span<double>(features.data() + i * f, f));
  }

  // Variance-driven bit allocation.
  std::vector<double> variances(f, 0.0);
  {
    std::vector<double> means(f, 0.0);
    for (size_t i = 0; i < data.size(); ++i) {
      for (size_t d = 0; d < f; ++d) means[d] += features[i * f + d];
    }
    for (double& m : means) m /= static_cast<double>(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      for (size_t d = 0; d < f; ++d) {
        double x = features[i * f + d] - means[d];
        variances[d] += x * x;
      }
    }
    for (double& v : variances) v /= static_cast<double>(data.size());
  }
  index->bits_ =
      AllocateBits(variances, options.total_bits, options.max_bits_per_dim);

  // Lloyd-Max quantizer per allocated dimension, trained on a sample.
  Rng rng(options.seed);
  size_t sample_n = std::min<size_t>(options.quantizer_sample, data.size());
  std::vector<size_t> sample_ids(data.size());
  std::iota(sample_ids.begin(), sample_ids.end(), 0);
  for (size_t i = 0; i < sample_n; ++i) {
    std::swap(sample_ids[i],
              sample_ids[i + rng.NextUint64(data.size() - i)]);
  }
  for (size_t d = 0; d < f; ++d) {
    if (index->bits_[d] == 0) continue;
    std::vector<double> sample(sample_n);
    for (size_t i = 0; i < sample_n; ++i) {
      sample[i] = features[sample_ids[i] * f + d];
    }
    index->quantized_dims_.push_back(d);
    index->quantizers_.push_back(
        std::make_unique<LloydQuantizer>(std::move(sample), index->bits_[d]));
  }

  // Encode the approximation file.
  const size_t qd = index->quantized_dims_.size();
  index->cells_.resize(data.size() * qd);
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = 0; j < qd; ++j) {
      size_t d = index->quantized_dims_[j];
      index->cells_[i * qd + j] =
          index->quantizers_[j]->Quantize(features[i * f + d]);
    }
  }

  index->histogram_ = std::make_unique<DistanceHistogram>(
      data, options.histogram_pairs, options.histogram_bins, rng);
  return index;
}

double VaFileIndex::LowerBoundSq(std::span<const double> query_features,
                                 size_t i) const {
  const size_t qd = quantized_dims_.size();
  double sum = 0.0;
  for (size_t j = 0; j < qd; ++j) {
    size_t d = quantized_dims_[j];
    sum += quantizers_[j]->MinDistSqToCell(query_features[d],
                                           cells_[i * qd + j]);
  }
  return sum;
}

std::vector<double> VaFileIndex::LowerBoundsSq(
    std::span<const double> query_features) const {
  // Asymmetric-distance trick: tabulate cell -> min-distance once per
  // quantized dimension for this query, then the scan over all series is
  // pure table accumulation (dispatched, gathered under AVX2). Dimensions
  // accumulate in the same order as LowerBoundSq, so the sums match it
  // bit for bit.
  const size_t qd = quantized_dims_.size();
  std::vector<double> lut;
  std::vector<size_t> lut_offset(qd);
  for (size_t j = 0; j < qd; ++j) {
    lut_offset[j] = lut.size();
    const LloydQuantizer& q = *quantizers_[j];
    const double qv = query_features[quantized_dims_[j]];
    for (uint32_t cell = 0; cell < q.num_cells(); ++cell) {
      lut.push_back(q.MinDistSqToCell(qv, cell));
    }
  }
  std::vector<double> lb(num_series_, 0.0);
  const DistanceKernels& kernels = ActiveKernels();
  for (size_t j = 0; j < qd; ++j) {
    kernels.lut_accumulate(lut.data() + lut_offset[j], cells_.data() + j,
                           num_series_, qd, lb.data());
  }
  return lb;
}

std::vector<std::vector<double>> VaFileIndex::LowerBoundsSqBatch(
    std::span<const std::vector<double>> query_features) const {
  const size_t nq = query_features.size();
  const size_t qd = quantized_dims_.size();
  // Same per-query LUT layout as LowerBoundsSq (offsets are
  // query-independent: one table per quantized dimension).
  std::vector<size_t> lut_offset(qd);
  size_t lut_size = 0;
  for (size_t j = 0; j < qd; ++j) {
    lut_offset[j] = lut_size;
    lut_size += quantizers_[j]->num_cells();
  }
  std::vector<std::vector<double>> luts(nq, std::vector<double>(lut_size));
  for (size_t q = 0; q < nq; ++q) {
    for (size_t j = 0; j < qd; ++j) {
      const LloydQuantizer& quant = *quantizers_[j];
      const double qv = query_features[q][quantized_dims_[j]];
      for (uint32_t cell = 0; cell < quant.num_cells(); ++cell) {
        luts[q][lut_offset[j] + cell] = quant.MinDistSqToCell(qv, cell);
      }
    }
  }
  // Column-major across the batch: dimension j's cell column is streamed
  // once and accumulated into every query's bounds while it is cache-hot.
  // Within each query, dimensions still accumulate in ascending j — the
  // exact order of LowerBoundsSq — so per-query sums are bit-identical.
  std::vector<std::vector<double>> lb(nq,
                                      std::vector<double>(num_series_, 0.0));
  const DistanceKernels& kernels = ActiveKernels();
  for (size_t j = 0; j < qd; ++j) {
    for (size_t q = 0; q < nq; ++q) {
      kernels.lut_accumulate(luts[q].data() + lut_offset[j],
                             cells_.data() + j, num_series_, qd,
                             lb[q].data());
    }
  }
  return lb;
}

Result<KnnAnswer> VaFileIndex::Search(std::span<const float> query,
                                      const SearchParams& params,
                                      QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length mismatch");
  }
  std::vector<double> qf = dft_->Transform(query);

  // Phase 1: lower bound for every series from the approximation file.
  return RefineCandidates(query, params, counters, LowerBoundsSq(qf));
}

Result<KnnAnswer> VaFileIndex::RefineCandidates(std::span<const float> query,
                                                const SearchParams& params,
                                                QueryCounters* counters,
                                                std::vector<double> lb) const {
  std::vector<std::pair<double, int64_t>> order(num_series_);
  for (size_t i = 0; i < num_series_; ++i) {
    order[i] = {lb[i], static_cast<int64_t>(i)};
  }
  if (counters != nullptr) counters->lb_distances += num_series_;
  std::sort(order.begin(), order.end());

  const double one_plus_eps =
      params.mode == SearchMode::kDeltaEpsilon ? 1.0 + params.epsilon : 1.0;
  const double prune_shrink = 1.0 / (one_plus_eps * one_plus_eps);
  double stop_sq = 0.0;
  if (params.mode == SearchMode::kDeltaEpsilon && params.delta < 1.0) {
    double r_delta = histogram_->DeltaRadius(params.delta, num_series_);
    stop_sq = (one_plus_eps * r_delta) * (one_plus_eps * r_delta);
  }
  const size_t probe_budget = params.mode == SearchMode::kNgApproximate
                                  ? std::max<size_t>(params.nprobe, params.k)
                                  : std::numeric_limits<size_t>::max();

  // Phase 2: refine candidates in ascending lower-bound order. The
  // ordered refiner evaluates upcoming candidates speculatively across
  // workers while committing — and deciding the cutoffs below — in
  // exactly the serial order, so answers match num_threads = 1.
  AnswerSet answers(params.k);
  ParallelLeafScanner scanner(query, &answers, counters, params.num_threads,
                              params.pin_budget, /*prefetch_depth=*/0,
                              ResolveCancellation(params));
  Result<size_t> probed = scanner.RefineOrdered(
      provider_, order.size(),
      /*id_at=*/[&](size_t i) { return order[i].second; },
      /*before=*/
      [&](size_t i) {
        if (i >= probe_budget) return false;  // i == candidates committed
        return order[i].first <= answers.KthDistanceSq() * prune_shrink;
      },
      /*after=*/
      [&](size_t) {
        return !(params.mode == SearchMode::kDeltaEpsilon && answers.full() &&
                 answers.KthDistanceSq() <= stop_sq);
      });
  HYDRA_RETURN_IF_ERROR(probed.status());
  return answers.Finish();
}

std::vector<Result<KnnAnswer>> VaFileIndex::BatchSearch(
    std::span<const BatchQuery> batch) const {
  std::vector<Result<KnnAnswer>> results(batch.size(),
                                         Status::Internal("unset"));
  std::vector<size_t> members;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].params.k == 0) {
      results[i] = Status::InvalidArgument("k must be > 0");
    } else if (batch[i].query.size() != series_length_) {
      results[i] = Status::InvalidArgument("query length mismatch");
    } else {
      members.push_back(i);
    }
  }
  if (members.size() <= 1) {
    for (size_t i : members) {
      results[i] =
          Search(batch[i].query, batch[i].params, batch[i].counters);
    }
    return results;
  }
  // Phase 1 batched (every mode: the LUT scan is mode-independent), then
  // phase 2 per member — ordered refinement already commits in serial
  // order per query, and a member that fails mid-refinement fails alone.
  std::vector<std::vector<double>> features;
  features.reserve(members.size());
  for (size_t i : members) {
    features.push_back(dft_->Transform(batch[i].query));
  }
  std::vector<std::vector<double>> bounds =
      LowerBoundsSqBatch(std::span<const std::vector<double>>(features));
  for (size_t m = 0; m < members.size(); ++m) {
    const size_t i = members[m];
    results[i] = RefineCandidates(batch[i].query, batch[i].params,
                                  batch[i].counters, std::move(bounds[m]));
  }
  return results;
}

size_t VaFileIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  total += cells_.size() * sizeof(uint32_t);
  total += bits_.size();
  for (const auto& q : quantizers_) {
    total += sizeof(LloydQuantizer) + (size_t{2} << q->bits()) * sizeof(double);
  }
  return total;
}

}  // namespace hydra
