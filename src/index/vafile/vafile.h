#ifndef HYDRA_INDEX_VAFILE_VAFILE_H_
#define HYDRA_INDEX_VAFILE_VAFILE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/distance_histogram.h"
#include "index/index.h"
#include "storage/buffer_manager.h"
#include "transform/dft.h"
#include "transform/scalar_quantizer.h"

namespace hydra {

// VA+file (Ferhatosmanoglu et al. 2000) with the paper's modifications:
// the KLT decorrelation step is replaced by DFT (as the paper does for
// efficiency), per-dimension bits are allocated by variance, and each
// dimension is quantized with a Lloyd-Max quantizer trained on the actual
// coefficient distribution.
//
// Search is two-phase skip-sequential: phase 1 scans the in-memory
// approximation file computing per-series lower bounds; phase 2 visits
// candidates in ascending lower-bound order, fetching raw series until
// the bound exceeds the (ε-relaxed) bsf. ng-approximate mode caps phase 2
// at `nprobe` raw series — the paper notes this per-series (rather than
// per-cluster) pruning is why VA+file trails the tree indexes on
// approximate search.
struct VaFileOptions {
  size_t num_features = 16;      // retained DFT dimensions
  size_t total_bits = 64;        // bit budget across dimensions
  size_t max_bits_per_dim = 8;
  size_t quantizer_sample = 4096;  // series sampled to train quantizers
  size_t histogram_pairs = 20000;
  size_t histogram_bins = 512;
  uint64_t seed = 42;
};

class VaFileIndex : public Index {
 public:
  static Result<std::unique_ptr<VaFileIndex>> Build(
      const Dataset& data, SeriesProvider* provider,
      const VaFileOptions& options = {});

  std::string name() const override { return "vafile"; }
  IndexCapabilities capabilities() const override {
    IndexCapabilities c;
    c.exact = true;
    c.ng_approximate = true;
    c.epsilon_approximate = true;
    c.delta_epsilon_approximate = true;
    c.disk_resident = true;
    c.batched_queries = true;
    c.summarization = "DFT";
    return c;
  }
  size_t MemoryBytes() const override;

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

  // Query-batched two-phase search: phase 1 (the LUT scan over the
  // approximation file) runs column-major across the whole batch — each
  // cells_ column is walked once, cache-hot, accumulating every query's
  // lower bounds — then phase 2 refines per query (ordered refinement is
  // already per-query serial-order committed, so answers are identical to
  // solo Search by construction; a member that fails refines alone).
  std::vector<Result<KnnAnswer>> BatchSearch(
      std::span<const BatchQuery> batch) const override;

  // Introspection for tests.
  const std::vector<uint8_t>& bit_allocation() const { return bits_; }
  // Squared lower bound between a query's features and series i's cells.
  // Reference implementation; the search path uses LowerBoundsSq, which
  // must agree with this per series (tested in vafile_test).
  double LowerBoundSq(std::span<const double> query_features,
                      size_t i) const;
  // Lower bounds for every series at once via per-query cell tables fed
  // to the dispatched LUT-accumulation kernel (phase 1 of Search).
  std::vector<double> LowerBoundsSq(
      std::span<const double> query_features) const;
  // Batched phase 1: lower bounds for every series for EVERY query in one
  // column-major pass over the approximation file. Each query's bounds
  // accumulate dimensions in the same ascending order as LowerBoundsSq,
  // so lb[q] matches LowerBoundsSq(query_features[q]) bit for bit.
  std::vector<std::vector<double>> LowerBoundsSqBatch(
      std::span<const std::vector<double>> query_features) const;

 private:
  VaFileIndex(SeriesProvider* provider, const VaFileOptions& options)
      : provider_(provider), options_(options) {}

  // Phase 2 shared by Search and BatchSearch: sorts `lb` ascending and
  // refines raw candidates in that order under the mode's prune/stop
  // rules. Charges the phase-1 lb_distances to `counters`.
  Result<KnnAnswer> RefineCandidates(std::span<const float> query,
                                     const SearchParams& params,
                                     QueryCounters* counters,
                                     std::vector<double> lb) const;

  SeriesProvider* provider_;  // not owned
  VaFileOptions options_;
  std::unique_ptr<DftFeatures> dft_;
  std::vector<uint8_t> bits_;  // per-dimension bit counts
  std::vector<std::unique_ptr<LloydQuantizer>> quantizers_;  // quantized dims
  std::vector<size_t> quantized_dims_;  // feature dims with bits > 0
  std::vector<uint32_t> cells_;  // n × quantized_dims_ cell ids
  std::unique_ptr<DistanceHistogram> histogram_;
  size_t series_length_ = 0;
  size_t num_series_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_VAFILE_VAFILE_H_
