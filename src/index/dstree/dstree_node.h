#ifndef HYDRA_INDEX_DSTREE_DSTREE_NODE_H_
#define HYDRA_INDEX_DSTREE_DSTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "transform/eapca.h"

namespace hydra {

// One DSTree node. The DSTree (Wang et al. 2013) is a binary tree over
// EAPCA summaries in which every node owns its own segmentation of the
// series domain; leaves split either *horizontally* (series partitioned by
// the mean or standard deviation of one segment) or *vertically* (a
// segment is first subdivided, refining the children's segmentation, then
// partitioned) — the data-adaptive property that distinguishes it from
// fixed-segmentation indexes.
struct DSTreeNode {
  // Segmentation of this node (exclusive end offsets).
  Segmentation segmentation;

  // Synopsis: per-segment envelope of the EAPCA features of every series
  // in this subtree. MinDist against a query lower-bounds the true
  // distance; the envelope diameter drives the split-quality heuristic.
  std::vector<double> min_mean, max_mean, min_std, max_std;
  size_t count = 0;  // series in the subtree

  bool is_leaf = true;

  // Split rule (internal nodes): series with feature <= split_value go
  // left. The feature is the mean (or std) of points [split_start,
  // split_end), a range that is a segment of the *children's*
  // segmentation (it differs from the parent's after a vertical split).
  size_t split_start = 0;
  size_t split_end = 0;
  bool split_on_std = false;
  double split_value = 0.0;

  int32_t left = -1;
  int32_t right = -1;

  // Leaf payload: dataset positions of the series stored here.
  std::vector<int64_t> series_ids;

  // Extends the envelope with one series' features (under this node's
  // segmentation) and bumps count.
  void UpdateSynopsis(const std::vector<EapcaFeature>& features);

  // Σ_s w_s·((Δμ_s)² + (Δσ_s)²): the squared EAPCA-envelope diameter,
  // the QoS measure minimized when choosing splits.
  double SynopsisDiameterSq() const;

  size_t ApproxBytes() const;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_DSTREE_DSTREE_NODE_H_
