#ifndef HYDRA_INDEX_DSTREE_DSTREE_H_
#define HYDRA_INDEX_DSTREE_DSTREE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/distance_histogram.h"
#include "index/answer_set.h"
#include "index/dstree/dstree_node.h"
#include "index/index.h"
#include "storage/buffer_manager.h"

namespace hydra {

class ParallelLeafScanner;  // exec/parallel_scanner.h

// DSTree (Wang et al. 2013) extended with the paper's ng / ε / δ-ε
// approximate search modes (Algorithms 1 & 2). The tree indexes EAPCA
// summaries with per-node adaptive segmentation; raw series are fetched
// from a SeriesProvider at query time, so the same index serves both the
// in-memory and the disk-resident regimes.
struct DSTreeOptions {
  size_t leaf_capacity = 64;
  size_t initial_segments = 4;
  // Vertical splits subdivide a segment only while it is at least this
  // many points long.
  size_t min_segment_length = 2;
  // Sampling parameters of the δ-radius histogram (paper: 100K sample).
  size_t histogram_pairs = 20000;
  size_t histogram_bins = 512;
  uint64_t histogram_seed = 42;
};

class DSTreeIndex : public Index {
 public:
  // Builds by inserting every series of `data`. `provider` serves raw
  // series at query time and must describe the same collection.
  static Result<std::unique_ptr<DSTreeIndex>> Build(
      const Dataset& data, SeriesProvider* provider,
      const DSTreeOptions& options = {});

  std::string name() const override { return "dstree"; }
  IndexCapabilities capabilities() const override {
    IndexCapabilities c;
    c.exact = true;
    c.ng_approximate = true;
    c.epsilon_approximate = true;
    c.delta_epsilon_approximate = true;
    c.disk_resident = true;
    c.batched_queries = true;
    c.summarization = "EAPCA";
    return c;
  }
  size_t MemoryBytes() const override;

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

  // Exact-mode members co-traverse the tree in one best-first walk with
  // shared lower-bound computation and one scan per leaf for the queries
  // it survives (index/batch_tree_search.h); approximate-mode members run
  // their own solo Search inside the batch.
  std::vector<Result<KnnAnswer>> BatchSearch(
      std::span<const BatchQuery> batch) const override;

  // r-range query (paper Definition 2): all series within `radius`.
  // epsilon > 0 trades completeness near the boundary for speed; returned
  // results always satisfy d <= radius (see TreeRangeSearch).
  Result<KnnAnswer> RangeSearch(std::span<const float> query, double radius,
                                double epsilon,
                                QueryCounters* counters) const;

  // Persists the index structure (nodes, synopses, δ-histogram) so that a
  // later session can Load() it and serve queries against the same raw
  // data via any provider. Raw series are not duplicated into the file.
  Status Save(const std::string& path) const;
  static Result<std::unique_ptr<DSTreeIndex>> Load(const std::string& path,
                                                   SeriesProvider* provider);

  // --- TreeKnnSearch interface (public for the generic algorithm) ---
  struct QueryContext {
    std::vector<double> prefix_sum;   // prefix sums of the query
    std::vector<double> prefix_sum2;  // prefix sums of squares
  };
  // Builds the per-query context consumed by the generic tree algorithms
  // (TreeKnnSearch, IncrementalKnnStream, ProgressiveKnnSearch).
  QueryContext MakeQueryContext(std::span<const float> query) const;
  std::vector<int32_t> SearchRoots() const { return {0}; }
  bool IsLeaf(int32_t id) const { return nodes_[id].is_leaf; }
  std::vector<int32_t> NodeChildren(int32_t id) const;
  double MinDistSq(const QueryContext& ctx, int32_t id) const;
  Status ScanLeaf(int32_t id, ParallelLeafScanner* scanner) const;
  // Readahead hint for a queued leaf (tree_search.h): announces up to
  // max_pages pages of the leaf's (sorted) id runs to the provider's
  // prefetcher. Returns pages announced.
  size_t PrefetchLeaf(int32_t id, ParallelLeafScanner* scanner,
                      size_t max_pages) const;
  // A leaf's candidate ids (sorted ascending at build/load), for the
  // batched co-traversal's shared leaf scans (batch_tree_search.h).
  std::span<const int64_t> LeafIds(int32_t id) const {
    return nodes_[id].series_ids;
  }

  // Introspection for tests and benches.
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;
  size_t max_depth() const;
  const DSTreeNode& node(size_t i) const { return nodes_[i]; }

 private:
  DSTreeIndex(SeriesProvider* provider, const DSTreeOptions& options)
      : provider_(provider), options_(options) {}

  void Insert(const Dataset& data, int64_t id);
  void SplitLeaf(const Dataset& data, int32_t node_id);
  // Mean or std of series[start, end) from per-series prefix sums.
  static EapcaFeature RangeFeature(const std::vector<double>& ps,
                                   const std::vector<double>& ps2,
                                   size_t start, size_t end);

  SeriesProvider* provider_;  // not owned
  DSTreeOptions options_;
  std::vector<DSTreeNode> nodes_;  // nodes_[0] = root
  std::unique_ptr<DistanceHistogram> histogram_;
  size_t series_length_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_DSTREE_DSTREE_H_
