#include "index/dstree/dstree_node.h"

#include <algorithm>
#include <limits>

namespace hydra {

void DSTreeNode::UpdateSynopsis(const std::vector<EapcaFeature>& features) {
  if (min_mean.empty()) {
    size_t s = segmentation.size();
    min_mean.assign(s, std::numeric_limits<double>::infinity());
    max_mean.assign(s, -std::numeric_limits<double>::infinity());
    min_std.assign(s, std::numeric_limits<double>::infinity());
    max_std.assign(s, -std::numeric_limits<double>::infinity());
  }
  for (size_t s = 0; s < features.size(); ++s) {
    min_mean[s] = std::min(min_mean[s], features[s].mean);
    max_mean[s] = std::max(max_mean[s], features[s].mean);
    min_std[s] = std::min(min_std[s], features[s].std);
    max_std[s] = std::max(max_std[s], features[s].std);
  }
  ++count;
}

double DSTreeNode::SynopsisDiameterSq() const {
  if (count == 0 || min_mean.empty()) return 0.0;
  double sum = 0.0;
  size_t start = 0;
  for (size_t s = 0; s < segmentation.size(); ++s) {
    double w = static_cast<double>(segmentation[s] - start);
    double dm = max_mean[s] - min_mean[s];
    double ds = max_std[s] - min_std[s];
    sum += w * (dm * dm + ds * ds);
    start = segmentation[s];
  }
  return sum;
}

size_t DSTreeNode::ApproxBytes() const {
  return sizeof(DSTreeNode) +
         segmentation.size() * sizeof(size_t) +
         4 * min_mean.size() * sizeof(double) +
         series_ids.size() * sizeof(int64_t);
}

}  // namespace hydra
