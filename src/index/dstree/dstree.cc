#include "index/dstree/dstree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "index/batch_tree_search.h"
#include "index/leaf_scanner.h"
#include "index/tree_search.h"
#include "storage/serialize.h"

namespace hydra {
namespace {

// Prefix sums of one series; enables O(1) mean/std over any point range,
// which DSTree needs constantly (every node has its own segmentation).
void BuildPrefixSums(std::span<const float> series, std::vector<double>* ps,
                     std::vector<double>* ps2) {
  ps->assign(series.size() + 1, 0.0);
  ps2->assign(series.size() + 1, 0.0);
  for (size_t t = 0; t < series.size(); ++t) {
    (*ps)[t + 1] = (*ps)[t] + series[t];
    (*ps2)[t + 1] = (*ps2)[t] + static_cast<double>(series[t]) * series[t];
  }
}

std::vector<EapcaFeature> FeaturesUnder(const Segmentation& seg,
                                        const std::vector<double>& ps,
                                        const std::vector<double>& ps2) {
  std::vector<EapcaFeature> f(seg.size());
  size_t start = 0;
  for (size_t s = 0; s < seg.size(); ++s) {
    size_t end = seg[s];
    double n = static_cast<double>(end - start);
    double mean = (ps[end] - ps[start]) / n;
    double var = (ps2[end] - ps2[start]) / n - mean * mean;
    f[s] = {mean, var > 0.0 ? std::sqrt(var) : 0.0};
    start = end;
  }
  return f;
}

}  // namespace

EapcaFeature DSTreeIndex::RangeFeature(const std::vector<double>& ps,
                                       const std::vector<double>& ps2,
                                       size_t start, size_t end) {
  double n = static_cast<double>(end - start);
  double mean = (ps[end] - ps[start]) / n;
  double var = (ps2[end] - ps2[start]) / n - mean * mean;
  return {mean, var > 0.0 ? std::sqrt(var) : 0.0};
}

Result<std::unique_ptr<DSTreeIndex>> DSTreeIndex::Build(
    const Dataset& data, SeriesProvider* provider,
    const DSTreeOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (provider == nullptr ||
      provider->num_series() != data.size() ||
      provider->series_length() != data.length()) {
    return Status::InvalidArgument("provider does not match dataset");
  }
  if (options.leaf_capacity == 0) {
    return Status::InvalidArgument("leaf_capacity must be > 0");
  }
  std::unique_ptr<DSTreeIndex> index(new DSTreeIndex(provider, options));
  index->series_length_ = data.length();

  DSTreeNode root;
  root.segmentation =
      UniformSegmentation(data.length(), options.initial_segments);
  index->nodes_.push_back(std::move(root));

  for (size_t i = 0; i < data.size(); ++i) {
    index->Insert(data, static_cast<int64_t>(i));
  }
  // Leaf ids sorted once at build time so consecutive ids coalesce into
  // contiguous runs (batch kernel + sequential readahead; see
  // index/leaf_scanner.h). Ascending bulk load plus order-preserving
  // splits leave leaves sorted already, so this is a guarantee, not a
  // pass.
  for (DSTreeNode& node : index->nodes_) {
    if (node.is_leaf) {
      std::sort(node.series_ids.begin(), node.series_ids.end());
    }
  }

  Rng rng(options.histogram_seed);
  index->histogram_ = std::make_unique<DistanceHistogram>(
      data, options.histogram_pairs, options.histogram_bins, rng);
  return index;
}

void DSTreeIndex::Insert(const Dataset& data, int64_t id) {
  std::vector<double> ps, ps2;
  BuildPrefixSums(data.series(static_cast<size_t>(id)), &ps, &ps2);

  int32_t node_id = 0;
  while (true) {
    DSTreeNode& node = nodes_[node_id];
    node.UpdateSynopsis(FeaturesUnder(node.segmentation, ps, ps2));
    if (node.is_leaf) break;
    EapcaFeature f = RangeFeature(ps, ps2, node.split_start, node.split_end);
    double v = node.split_on_std ? f.std : f.mean;
    node_id = v <= node.split_value ? node.left : node.right;
  }
  nodes_[node_id].series_ids.push_back(id);
  if (nodes_[node_id].series_ids.size() > options_.leaf_capacity) {
    SplitLeaf(data, node_id);
  }
}

void DSTreeIndex::SplitLeaf(const Dataset& data, int32_t node_id) {
  // Candidate split rules over the leaf's segmentation:
  //  * horizontal: partition by segment mean or segment std;
  //  * vertical:   first subdivide the segment at its midpoint, then
  //    partition by a sub-segment's mean or std (children get the refined
  //    segmentation).
  // Every candidate is evaluated exactly on the buffered series: the
  // threshold is the feature median (balanced fanout) and the score is
  // the summed squared EAPCA-envelope diameter of the two children — the
  // QoS heuristic of the DSTree paper, computed on real data rather than
  // estimated.
  struct Candidate {
    size_t start, end;        // feature range
    bool on_std;
    bool vertical;            // children refine the split segment
    size_t segment;           // index in the leaf's segmentation
    double threshold = 0.0;
    double score = std::numeric_limits<double>::infinity();
  };

  const std::vector<int64_t> ids = nodes_[node_id].series_ids;
  const Segmentation seg = nodes_[node_id].segmentation;

  // Prefix sums of every buffered series, reused across candidates.
  std::vector<std::vector<double>> ps(ids.size()), ps2(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    BuildPrefixSums(data.series(static_cast<size_t>(ids[i])), &ps[i],
                    &ps2[i]);
  }

  std::vector<Candidate> candidates;
  size_t seg_start = 0;
  for (size_t s = 0; s < seg.size(); ++s) {
    size_t seg_end = seg[s];
    for (bool on_std : {false, true}) {
      candidates.push_back({seg_start, seg_end, on_std, false, s, 0.0, 0.0});
    }
    if (seg_end - seg_start >= 2 * options_.min_segment_length) {
      size_t mid = (seg_start + seg_end) / 2;
      for (bool on_std : {false, true}) {
        candidates.push_back({seg_start, mid, on_std, true, s, 0.0, 0.0});
        candidates.push_back({mid, seg_end, on_std, true, s, 0.0, 0.0});
      }
    }
    seg_start = seg_end;
  }

  auto child_segmentation = [&](const Candidate& c) {
    Segmentation out;
    size_t start = 0;
    for (size_t s = 0; s < seg.size(); ++s) {
      if (c.vertical && s == c.segment) {
        out.push_back((start + seg[s]) / 2);
      }
      out.push_back(seg[s]);
      start = seg[s];
    }
    return out;
  };

  Candidate best;
  std::vector<double> feats(ids.size());
  for (Candidate& c : candidates) {
    for (size_t i = 0; i < ids.size(); ++i) {
      EapcaFeature f = RangeFeature(ps[i], ps2[i], c.start, c.end);
      feats[i] = c.on_std ? f.std : f.mean;
    }
    std::vector<double> sorted = feats;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    c.threshold = sorted[sorted.size() / 2];
    // Degenerate candidate: all features on one side.
    size_t left_count = 0;
    for (double v : feats) left_count += v <= c.threshold ? 1 : 0;
    if (left_count == 0 || left_count == ids.size()) continue;

    Segmentation child_seg = child_segmentation(c);
    DSTreeNode l, r;
    l.segmentation = child_seg;
    r.segmentation = child_seg;
    for (size_t i = 0; i < ids.size(); ++i) {
      auto f = FeaturesUnder(child_seg, ps[i], ps2[i]);
      (feats[i] <= c.threshold ? l : r).UpdateSynopsis(f);
    }
    c.score = l.SynopsisDiameterSq() + r.SynopsisDiameterSq();
    if (c.score < best.score) best = c;
  }

  if (best.score == std::numeric_limits<double>::infinity()) {
    // No balanced split exists (identical series). Grow the leaf instead:
    // correctness is unaffected, only the fill factor.
    return;
  }

  Segmentation child_seg = child_segmentation(best);
  DSTreeNode left, right;
  left.segmentation = child_seg;
  right.segmentation = child_seg;
  for (size_t i = 0; i < ids.size(); ++i) {
    EapcaFeature f = RangeFeature(ps[i], ps2[i], best.start, best.end);
    double v = best.on_std ? f.std : f.mean;
    DSTreeNode& child = v <= best.threshold ? left : right;
    child.UpdateSynopsis(FeaturesUnder(child_seg, ps[i], ps2[i]));
    child.series_ids.push_back(ids[i]);
  }

  int32_t left_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(std::move(left));
  int32_t right_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(std::move(right));

  DSTreeNode& parent = nodes_[node_id];
  parent.is_leaf = false;
  parent.series_ids.clear();
  parent.series_ids.shrink_to_fit();
  parent.split_start = best.start;
  parent.split_end = best.end;
  parent.split_on_std = best.on_std;
  parent.split_value = best.threshold;
  parent.left = left_id;
  parent.right = right_id;
}

std::vector<int32_t> DSTreeIndex::NodeChildren(int32_t id) const {
  const DSTreeNode& n = nodes_[id];
  std::vector<int32_t> out;
  if (n.left >= 0) out.push_back(n.left);
  if (n.right >= 0) out.push_back(n.right);
  return out;
}

double DSTreeIndex::MinDistSq(const QueryContext& ctx, int32_t id) const {
  const DSTreeNode& n = nodes_[id];
  if (n.count == 0) return std::numeric_limits<double>::infinity();
  double sum = 0.0;
  size_t start = 0;
  for (size_t s = 0; s < n.segmentation.size(); ++s) {
    size_t end = n.segmentation[s];
    EapcaFeature q =
        RangeFeature(ctx.prefix_sum, ctx.prefix_sum2, start, end);
    // Distance from the query feature to the node envelope; the closest
    // (mean, std) point of the envelope realizes the per-segment bound
    //   w·((μq − μ*)² + (σq − σ*)²) <= ||query − series||² on the segment.
    double dm = 0.0;
    if (q.mean < n.min_mean[s]) {
      dm = n.min_mean[s] - q.mean;
    } else if (q.mean > n.max_mean[s]) {
      dm = q.mean - n.max_mean[s];
    }
    double ds = 0.0;
    if (q.std < n.min_std[s]) {
      ds = n.min_std[s] - q.std;
    } else if (q.std > n.max_std[s]) {
      ds = q.std - n.max_std[s];
    }
    sum += static_cast<double>(end - start) * (dm * dm + ds * ds);
    start = end;
  }
  return sum;
}

Status DSTreeIndex::ScanLeaf(int32_t id,
                             ParallelLeafScanner* scanner) const {
  return scanner->ScanIds(provider_, nodes_[id].series_ids).status();
}

size_t DSTreeIndex::PrefetchLeaf(int32_t id, ParallelLeafScanner* scanner,
                                 size_t max_pages) const {
  return scanner->PrefetchIds(provider_, nodes_[id].series_ids, max_pages);
}

DSTreeIndex::QueryContext DSTreeIndex::MakeQueryContext(
    std::span<const float> query) const {
  QueryContext ctx;
  BuildPrefixSums(query, &ctx.prefix_sum, &ctx.prefix_sum2);
  return ctx;
}

Result<KnnAnswer> DSTreeIndex::Search(std::span<const float> query,
                                      const SearchParams& params,
                                      QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length mismatch");
  }
  QueryContext ctx = MakeQueryContext(query);
  double r_delta = 0.0;
  if (params.mode == SearchMode::kDeltaEpsilon && params.delta < 1.0) {
    r_delta = histogram_->DeltaRadius(params.delta, provider_->num_series());
  }
  return TreeKnnSearch(*this, ctx, query, params, r_delta, counters);
}

std::vector<Result<KnnAnswer>> DSTreeIndex::BatchSearch(
    std::span<const BatchQuery> batch) const {
  return TreeIndexBatchSearch(*this, provider_, series_length_, batch);
}

Result<KnnAnswer> DSTreeIndex::RangeSearch(std::span<const float> query,
                                           double radius, double epsilon,
                                           QueryCounters* counters) const {
  if (radius < 0.0 || epsilon < 0.0) {
    return Status::InvalidArgument("radius and epsilon must be >= 0");
  }
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length mismatch");
  }
  QueryContext ctx = MakeQueryContext(query);
  return TreeRangeSearch(*this, ctx, query, radius, epsilon, counters);
}

size_t DSTreeIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const DSTreeNode& n : nodes_) total += n.ApproxBytes();
  return total;
}

size_t DSTreeIndex::num_leaves() const {
  size_t leaves = 0;
  for (const DSTreeNode& n : nodes_) leaves += n.is_leaf ? 1 : 0;
  return leaves;
}

size_t DSTreeIndex::max_depth() const {
  // Iterative DFS carrying depth; the tree is binary via left/right.
  size_t best = 0;
  std::vector<std::pair<int32_t, size_t>> stack = {{0, 1}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    best = std::max(best, depth);
    const DSTreeNode& n = nodes_[id];
    if (n.left >= 0) stack.push_back({n.left, depth + 1});
    if (n.right >= 0) stack.push_back({n.right, depth + 1});
  }
  return best;
}


namespace {
constexpr uint32_t kDSTreeMagic = 0x44535452;  // "DSTR"
constexpr uint32_t kDSTreeVersion = 1;
}  // namespace

Status DSTreeIndex::Save(const std::string& path) const {
  BinaryWriter w(path);
  if (!w.ok()) return Status::IoError("cannot open for write: " + path);
  w.WriteU32(kDSTreeMagic);
  w.WriteU32(kDSTreeVersion);
  w.WriteU64(series_length_);
  w.WriteU64(options_.leaf_capacity);
  w.WriteU64(options_.initial_segments);
  w.WriteU64(options_.min_segment_length);

  w.WriteU64(nodes_.size());
  for (const DSTreeNode& n : nodes_) {
    w.WriteVector(n.segmentation);
    w.WriteVector(n.min_mean);
    w.WriteVector(n.max_mean);
    w.WriteVector(n.min_std);
    w.WriteVector(n.max_std);
    w.WriteU64(n.count);
    w.WriteBool(n.is_leaf);
    w.WriteU64(n.split_start);
    w.WriteU64(n.split_end);
    w.WriteBool(n.split_on_std);
    w.WriteDouble(n.split_value);
    w.WriteI32(n.left);
    w.WriteI32(n.right);
    w.WriteVector(n.series_ids);
  }

  DistanceHistogram::State hs = histogram_->ExportState();
  w.WriteVector(hs.cumulative_counts);
  w.WriteDouble(hs.min);
  w.WriteDouble(hs.max);
  w.WriteDouble(hs.total);
  return w.Close();
}

Result<std::unique_ptr<DSTreeIndex>> DSTreeIndex::Load(
    const std::string& path, SeriesProvider* provider) {
  if (provider == nullptr) {
    return Status::InvalidArgument("provider must not be null");
  }
  BinaryReader r(path);
  if (!r.ok()) return Status::IoError("cannot open for read: " + path);
  if (r.ReadU32() != kDSTreeMagic) {
    return Status::InvalidArgument("not a dstree index file: " + path);
  }
  if (r.ReadU32() != kDSTreeVersion) {
    return Status::InvalidArgument("unsupported dstree version: " + path);
  }
  DSTreeOptions options;
  uint64_t series_length = r.ReadU64();
  options.leaf_capacity = r.ReadU64();
  options.initial_segments = r.ReadU64();
  options.min_segment_length = r.ReadU64();
  if (provider->series_length() != series_length) {
    return Status::FailedPrecondition(
        "provider series length does not match saved index");
  }

  std::unique_ptr<DSTreeIndex> index(new DSTreeIndex(provider, options));
  index->series_length_ = series_length;
  uint64_t num_nodes = r.ReadU64();
  index->nodes_.reserve(num_nodes);
  for (uint64_t i = 0; i < num_nodes && r.ok(); ++i) {
    DSTreeNode n;
    n.segmentation = r.ReadVector<size_t>();
    n.min_mean = r.ReadVector<double>();
    n.max_mean = r.ReadVector<double>();
    n.min_std = r.ReadVector<double>();
    n.max_std = r.ReadVector<double>();
    n.count = r.ReadU64();
    n.is_leaf = r.ReadBool();
    n.split_start = r.ReadU64();
    n.split_end = r.ReadU64();
    n.split_on_std = r.ReadBool();
    n.split_value = r.ReadDouble();
    n.left = r.ReadI32();
    n.right = r.ReadI32();
    n.series_ids = r.ReadVector<int64_t>();
    std::sort(n.series_ids.begin(), n.series_ids.end());  // run coalescing
    index->nodes_.push_back(std::move(n));
  }
  DistanceHistogram::State hs;
  hs.cumulative_counts = r.ReadVector<double>();
  hs.min = r.ReadDouble();
  hs.max = r.ReadDouble();
  hs.total = r.ReadDouble();
  HYDRA_RETURN_IF_ERROR(r.status());
  index->histogram_ = std::make_unique<DistanceHistogram>(
      DistanceHistogram::FromState(std::move(hs)));
  if (index->nodes_.empty()) {
    return Status::InvalidArgument("saved index has no nodes");
  }
  return index;
}

}  // namespace hydra
