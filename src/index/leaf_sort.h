#ifndef HYDRA_INDEX_LEAF_SORT_H_
#define HYDRA_INDEX_LEAF_SORT_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace hydra {

// Sorts a leaf's payload by series id, permuting the per-id summary
// words (stride `stride` Words per id) alongside. Done once after bulk
// load so consecutive ids form contiguous runs that ride the SIMD batch
// kernel and the buffer pool's sequential readahead
// (index/leaf_scanner.h). Ascending bulk loads whose splits partition in
// order leave leaves sorted already — the is_sorted early-out makes the
// guarantee free there.
template <typename Word>
void SortLeafPayloadByIds(std::vector<int64_t>* ids,
                          std::vector<Word>* words, size_t stride) {
  if (ids->size() < 2) return;
  if (std::is_sorted(ids->begin(), ids->end())) return;
  std::vector<size_t> order(ids->size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*ids)[a] < (*ids)[b];
  });
  std::vector<int64_t> sorted_ids(ids->size());
  std::vector<Word> sorted_words(words->size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_ids[i] = (*ids)[order[i]];
    std::copy_n(words->begin() + order[i] * stride, stride,
                sorted_words.begin() + i * stride);
  }
  *ids = std::move(sorted_ids);
  *words = std::move(sorted_words);
}

}  // namespace hydra

#endif  // HYDRA_INDEX_LEAF_SORT_H_
