#ifndef HYDRA_INDEX_FLANN_KD_FOREST_H_
#define HYDRA_INDEX_FLANN_KD_FOREST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/counters.h"
#include "common/rng.h"
#include "core/dataset.h"
#include "index/answer_set.h"

namespace hydra {

// Randomized kd-tree forest (Silpa-Anan & Hartley 2008), one of Flann's
// two algorithms. Each tree splits on a dimension drawn uniformly from
// the few highest-variance dimensions at the node (the classic top-5
// rule) at the mean value; a query descends every tree once, then keeps
// expanding the globally closest unexplored branch across all trees until
// the shared `checks` budget of visited points is spent.
struct KdForestOptions {
  size_t num_trees = 4;
  size_t leaf_size = 16;
  size_t top_variance_dims = 5;
  uint64_t seed = 17;
};

class KdForest {
 public:
  KdForest(const Dataset& data, const KdForestOptions& options);

  // Adds the best candidates found within `checks` visited points.
  // Leaf scans shard across num_threads workers (exec/parallel_scanner.h);
  // 1 = serial.
  void Search(std::span<const float> query, size_t checks,
              AnswerSet* answers, QueryCounters* counters,
              size_t num_threads = 1) const;

  size_t MemoryBytes() const;
  size_t num_trees() const { return trees_.size(); }

 private:
  struct Node {
    int32_t left = -1;
    int32_t right = -1;
    uint32_t split_dim = 0;
    float split_value = 0.0f;
    // Leaf payload range in ids_.
    uint32_t begin = 0;
    uint32_t end = 0;
    bool leaf() const { return left < 0; }
  };
  struct Tree {
    std::vector<Node> nodes;
    std::vector<int64_t> ids;
  };

  int32_t BuildNode(Tree* tree, std::vector<int64_t>& ids, size_t begin,
                    size_t end, Rng& rng);

  const Dataset* data_;
  KdForestOptions options_;
  std::vector<Tree> trees_;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_FLANN_KD_FOREST_H_
