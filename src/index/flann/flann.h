#ifndef HYDRA_INDEX_FLANN_FLANN_H_
#define HYDRA_INDEX_FLANN_FLANN_H_

#include <memory>

#include "common/status.h"
#include "index/flann/kd_forest.h"
#include "index/flann/kmeans_tree.h"
#include "index/index.h"

namespace hydra {

// Flann (Muja & Lowe 2009): an ensemble that auto-selects between
// randomized kd-trees and a hierarchical k-means tree. The original
// performs full cross-validated parameter search; we implement the same
// selection principle with a direct bake-off — build both structures,
// time a self-query sample at the configured `checks` budget, keep the
// faster one at equal candidate budgets (document the simplification).
// `kAuto` can be overridden to force either algorithm.
struct FlannOptions {
  enum class Algorithm { kAuto, kKdForest, kKmeansTree };
  Algorithm algorithm = Algorithm::kAuto;
  KdForestOptions kd;
  KmeansTreeOptions kmeans;
  size_t default_checks = 64;  // visited-point budget per query
  size_t autotune_queries = 16;
};

class FlannIndex : public Index {
 public:
  static Result<std::unique_ptr<FlannIndex>> Build(
      const Dataset& data, const FlannOptions& options = {});

  std::string name() const override { return "flann"; }
  IndexCapabilities capabilities() const override {
    IndexCapabilities c;
    c.ng_approximate = true;
    c.disk_resident = false;
    c.summarization = "kd-forest / k-means tree";
    return c;
  }
  size_t MemoryBytes() const override;

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

  bool uses_kd_forest() const { return kd_ != nullptr; }

 private:
  FlannIndex(const Dataset& data, const FlannOptions& options)
      : data_(&data), options_(options) {}

  const Dataset* data_;
  FlannOptions options_;
  std::unique_ptr<KdForest> kd_;
  std::unique_ptr<KmeansTree> kmeans_;
  size_t series_length_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_FLANN_FLANN_H_
