#include "index/flann/flann.h"

#include <algorithm>

#include "common/rng.h"
#include "common/timer.h"
#include "index/answer_set.h"

namespace hydra {

Result<std::unique_ptr<FlannIndex>> FlannIndex::Build(
    const Dataset& data, const FlannOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  std::unique_ptr<FlannIndex> index(new FlannIndex(data, options));
  index->series_length_ = data.length();

  switch (options.algorithm) {
    case FlannOptions::Algorithm::kKdForest:
      index->kd_ = std::make_unique<KdForest>(data, options.kd);
      return index;
    case FlannOptions::Algorithm::kKmeansTree:
      index->kmeans_ = std::make_unique<KmeansTree>(data, options.kmeans);
      return index;
    case FlannOptions::Algorithm::kAuto:
      break;
  }

  // Auto-selection bake-off: time a sample of self-queries on both
  // structures at the default checks budget and keep the faster.
  auto kd = std::make_unique<KdForest>(data, options.kd);
  auto km = std::make_unique<KmeansTree>(data, options.kmeans);
  Rng rng(options.kd.seed ^ options.kmeans.seed);
  size_t trials = std::max<size_t>(options.autotune_queries, 1);

  double kd_time = 0.0, km_time = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    auto q = data.series(rng.NextUint64(data.size()));
    {
      Timer timer;
      AnswerSet a(1);
      kd->Search(q, options.default_checks, &a, nullptr);
      kd_time += timer.ElapsedSeconds();
    }
    {
      Timer timer;
      AnswerSet a(1);
      km->Search(q, options.default_checks, &a, nullptr);
      km_time += timer.ElapsedSeconds();
    }
  }
  if (kd_time <= km_time) {
    index->kd_ = std::move(kd);
  } else {
    index->kmeans_ = std::move(km);
  }
  return index;
}

Result<KnnAnswer> FlannIndex::Search(std::span<const float> query,
                                     const SearchParams& params,
                                     QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (params.mode != SearchMode::kNgApproximate) {
    return Status::Unimplemented(
        "flann supports ng-approximate search only");
  }
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length mismatch");
  }
  size_t checks = params.nprobe > 0 ? params.nprobe : options_.default_checks;
  checks = std::max(checks, params.k);
  AnswerSet answers(params.k);
  if (kd_ != nullptr) {
    kd_->Search(query, checks, &answers, counters, params.num_threads);
  } else {
    kmeans_->Search(query, checks, &answers, counters, params.num_threads);
  }
  return answers.Finish();
}

size_t FlannIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  if (kd_ != nullptr) total += kd_->MemoryBytes();
  if (kmeans_ != nullptr) total += kmeans_->MemoryBytes();
  // Flann keeps raw vectors resident for refinement.
  total += data_->SizeBytes();
  return total;
}

}  // namespace hydra
