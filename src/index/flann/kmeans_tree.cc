#include "index/flann/kmeans_tree.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "distance/euclidean.h"
#include "exec/parallel_scanner.h"
#include "transform/kmeans.h"

namespace hydra {

KmeansTree::KmeansTree(const Dataset& data, const KmeansTreeOptions& options)
    : data_(&data), options_(options) {
  std::vector<int64_t> all(data.size());
  for (size_t i = 0; i < data.size(); ++i) all[i] = static_cast<int64_t>(i);
  Rng rng(options.seed);
  BuildNode(std::move(all), rng);
}

int32_t KmeansTree::BuildNode(std::vector<int64_t> ids, Rng& rng) {
  int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back({});
  const size_t dim = data_->length();

  // Centroid of this node (used as the search priority key).
  {
    std::vector<double> mean(dim, 0.0);
    for (int64_t id : ids) {
      auto s = data_->series(static_cast<size_t>(id));
      for (size_t d = 0; d < dim; ++d) mean[d] += s[d];
    }
    double inv = ids.empty() ? 0.0 : 1.0 / static_cast<double>(ids.size());
    nodes_[node_id].centroid.resize(dim);
    for (size_t d = 0; d < dim; ++d) {
      nodes_[node_id].centroid[d] = static_cast<float>(mean[d] * inv);
    }
  }

  if (ids.size() <= std::max(options_.leaf_size, options_.branching)) {
    nodes_[node_id].ids = std::move(ids);
    return node_id;
  }

  // Cluster this subset into `branching` groups.
  std::vector<float> subset(ids.size() * dim);
  for (size_t i = 0; i < ids.size(); ++i) {
    auto s = data_->series(static_cast<size_t>(ids[i]));
    std::copy(s.begin(), s.end(), subset.begin() + i * dim);
  }
  KmeansOptions ko;
  ko.num_clusters = options_.branching;
  ko.max_iterations = options_.kmeans_iterations;
  KmeansResult km = Kmeans(subset, dim, ko, rng);
  size_t k = km.centroids.size() / dim;

  std::vector<std::vector<int64_t>> groups(k);
  for (size_t i = 0; i < ids.size(); ++i) {
    groups[km.assignments[i]].push_back(ids[i]);
  }
  // All points in one group (duplicates): stop growing.
  size_t nonempty = 0;
  for (const auto& g : groups) nonempty += g.empty() ? 0 : 1;
  if (nonempty <= 1) {
    nodes_[node_id].ids = std::move(ids);
    return node_id;
  }

  ids.clear();
  ids.shrink_to_fit();
  for (auto& g : groups) {
    if (g.empty()) continue;
    int32_t child = BuildNode(std::move(g), rng);
    nodes_[node_id].children.push_back(child);
  }
  return node_id;
}

void KmeansTree::Search(std::span<const float> query, size_t checks,
                        AnswerSet* answers, QueryCounters* counters,
                        size_t num_threads) const {
  struct Branch {
    double dist;
    int32_t node;
    bool operator>(const Branch& o) const { return dist > o.dist; }
  };
  std::priority_queue<Branch, std::vector<Branch>, std::greater<Branch>>
      branches;
  size_t visited = 0;
  ParallelLeafScanner scanner(query, answers, counters, num_threads);

  auto descend = [&](int32_t start) {
    int32_t node_id = start;
    while (!nodes_[node_id].children.empty()) {
      const Node& node = nodes_[node_id];
      double best = std::numeric_limits<double>::infinity();
      int32_t best_child = node.children.front();
      for (int32_t child : node.children) {
        double d = SquaredEuclidean(query, nodes_[child].centroid);
        if (counters != nullptr) ++counters->lb_distances;
        if (d < best) {
          best = d;
          best_child = child;
        } else {
          branches.push({d, child});
        }
      }
      node_id = best_child;
    }
    const Node& leaf = nodes_[node_id];
    visited += scanner.ScanIds(*data_, leaf.ids);
    if (counters != nullptr) ++counters->leaves_visited;
  };

  descend(0);
  while (visited < checks && !branches.empty()) {
    Branch b = branches.top();
    branches.pop();
    descend(b.node);
  }
}

size_t KmeansTree::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const Node& n : nodes_) {
    total += sizeof(Node) + n.centroid.size() * sizeof(float) +
             n.children.size() * sizeof(int32_t) +
             n.ids.size() * sizeof(int64_t);
  }
  return total;
}

}  // namespace hydra
