#ifndef HYDRA_INDEX_FLANN_KMEANS_TREE_H_
#define HYDRA_INDEX_FLANN_KMEANS_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/counters.h"
#include "common/rng.h"
#include "core/dataset.h"
#include "index/answer_set.h"

namespace hydra {

// Hierarchical k-means tree (Muja & Lowe 2009), Flann's second algorithm:
// the data is recursively clustered with small-k k-means; a query greedily
// descends to the closest leaf and then explores the best unvisited
// branches (priority queue on centroid distance) until the `checks`
// budget of visited points is spent.
struct KmeansTreeOptions {
  size_t branching = 8;
  size_t leaf_size = 16;
  size_t kmeans_iterations = 7;  // Flann's default "iterations" knob
  uint64_t seed = 19;
};

class KmeansTree {
 public:
  KmeansTree(const Dataset& data, const KmeansTreeOptions& options);

  // Leaf scans shard across num_threads workers (exec/parallel_scanner.h);
  // 1 = serial.
  void Search(std::span<const float> query, size_t checks,
              AnswerSet* answers, QueryCounters* counters,
              size_t num_threads = 1) const;

  size_t MemoryBytes() const;

 private:
  struct Node {
    std::vector<float> centroid;
    std::vector<int32_t> children;  // empty = leaf
    std::vector<int64_t> ids;       // leaf payload
  };

  int32_t BuildNode(std::vector<int64_t> ids, Rng& rng);

  const Dataset* data_;
  KmeansTreeOptions options_;
  std::vector<Node> nodes_;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_FLANN_KMEANS_TREE_H_
