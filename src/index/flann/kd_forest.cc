#include "index/flann/kd_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "exec/parallel_scanner.h"

namespace hydra {

KdForest::KdForest(const Dataset& data, const KdForestOptions& options)
    : data_(&data), options_(options) {
  Rng rng(options.seed);
  trees_.resize(std::max<size_t>(options.num_trees, 1));
  for (Tree& tree : trees_) {
    tree.ids.resize(data.size());
    std::iota(tree.ids.begin(), tree.ids.end(), 0);
    BuildNode(&tree, tree.ids, 0, tree.ids.size(), rng);
  }
}

int32_t KdForest::BuildNode(Tree* tree, std::vector<int64_t>& ids,
                            size_t begin, size_t end, Rng& rng) {
  int32_t node_id = static_cast<int32_t>(tree->nodes.size());
  tree->nodes.push_back({});
  if (end - begin <= options_.leaf_size) {
    Node& node = tree->nodes[node_id];
    node.begin = static_cast<uint32_t>(begin);
    node.end = static_cast<uint32_t>(end);
    return node_id;
  }

  // Variance of each dimension over this subset; split on one of the
  // top-variance dimensions chosen at random (tree diversity).
  const size_t dim = data_->length();
  std::vector<double> mean(dim, 0.0), var(dim, 0.0);
  for (size_t i = begin; i < end; ++i) {
    auto s = data_->series(static_cast<size_t>(ids[i]));
    for (size_t d = 0; d < dim; ++d) mean[d] += s[d];
  }
  double inv_n = 1.0 / static_cast<double>(end - begin);
  for (double& m : mean) m *= inv_n;
  for (size_t i = begin; i < end; ++i) {
    auto s = data_->series(static_cast<size_t>(ids[i]));
    for (size_t d = 0; d < dim; ++d) {
      double x = s[d] - mean[d];
      var[d] += x * x;
    }
  }
  std::vector<uint32_t> dims(dim);
  std::iota(dims.begin(), dims.end(), 0);
  size_t top = std::min<size_t>(options_.top_variance_dims, dim);
  std::partial_sort(dims.begin(), dims.begin() + top, dims.end(),
                    [&](uint32_t a, uint32_t b) { return var[a] > var[b]; });
  uint32_t split_dim = dims[rng.NextUint64(top)];
  float split_value = static_cast<float>(mean[split_dim]);

  // Partition around the split value.
  auto it = std::partition(ids.begin() + begin, ids.begin() + end,
                           [&](int64_t id) {
                             return data_->series(static_cast<size_t>(
                                        id))[split_dim] < split_value;
                           });
  size_t mid = static_cast<size_t>(it - ids.begin());
  if (mid == begin || mid == end) {
    // Degenerate (constant dimension): make a leaf and stop recursing.
    Node& node = tree->nodes[node_id];
    node.begin = static_cast<uint32_t>(begin);
    node.end = static_cast<uint32_t>(end);
    return node_id;
  }

  int32_t left = BuildNode(tree, ids, begin, mid, rng);
  int32_t right = BuildNode(tree, ids, mid, end, rng);
  Node& node = tree->nodes[node_id];
  node.left = left;
  node.right = right;
  node.split_dim = split_dim;
  node.split_value = split_value;
  return node_id;
}

void KdForest::Search(std::span<const float> query, size_t checks,
                      AnswerSet* answers, QueryCounters* counters,
                      size_t num_threads) const {
  // Shared branch queue across trees, prioritized by the distance of the
  // query to the unexplored half-space boundary.
  struct Branch {
    double bound;
    uint32_t tree;
    int32_t node;
    bool operator>(const Branch& o) const { return bound > o.bound; }
  };
  std::priority_queue<Branch, std::vector<Branch>, std::greater<Branch>>
      branches;
  size_t visited = 0;
  ParallelLeafScanner scanner(query, answers, counters, num_threads);

  auto descend = [&](uint32_t t, int32_t start, double start_bound) {
    int32_t node_id = start;
    const Tree& tree = trees_[t];
    while (!tree.nodes[node_id].leaf()) {
      const Node& node = tree.nodes[node_id];
      double diff = static_cast<double>(query[node.split_dim]) -
                    node.split_value;
      int32_t near = diff < 0 ? node.left : node.right;
      int32_t far = diff < 0 ? node.right : node.left;
      branches.push({start_bound + diff * diff, t, far});
      node_id = near;
    }
    const Node& leaf = tree.nodes[node_id];
    visited += scanner.ScanIds(
        *data_, std::span<const int64_t>(tree.ids.data() + leaf.begin,
                                         leaf.end - leaf.begin));
    if (counters != nullptr) ++counters->leaves_visited;
  };

  for (uint32_t t = 0; t < trees_.size(); ++t) descend(t, 0, 0.0);
  while (visited < checks && !branches.empty()) {
    Branch b = branches.top();
    branches.pop();
    // Branch-and-bound: skip half-spaces that cannot beat the current kth.
    if (b.bound > answers->KthDistanceSq()) continue;
    descend(b.tree, b.node, b.bound);
  }
}

size_t KdForest::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const Tree& t : trees_) {
    total += t.nodes.size() * sizeof(Node) + t.ids.size() * sizeof(int64_t);
  }
  return total;
}

}  // namespace hydra
