#include "index/answer_set.h"

#include <cmath>
#include <limits>

namespace hydra {

bool AnswerSet::Offer(double dist_sq, int64_t id) {
  if (heap_.size() < k_) {
    heap_.emplace(dist_sq, id);
    return true;
  }
  if (dist_sq < heap_.top().first) {
    heap_.pop();
    heap_.emplace(dist_sq, id);
    return true;
  }
  return false;
}

double AnswerSet::KthDistanceSq() const {
  if (heap_.size() < k_) return std::numeric_limits<double>::infinity();
  return heap_.top().first;
}

std::vector<std::pair<double, int64_t>> AnswerSet::TakeEntries() {
  std::vector<std::pair<double, int64_t>> entries;
  entries.reserve(heap_.size());
  while (!heap_.empty()) {
    entries.push_back(heap_.top());
    heap_.pop();
  }
  return entries;
}

KnnAnswer AnswerSet::Finish() {
  KnnAnswer ans;
  ans.ids.resize(heap_.size());
  ans.distances.resize(heap_.size());
  for (size_t i = heap_.size(); i-- > 0;) {
    ans.ids[i] = heap_.top().second;
    ans.distances[i] = std::sqrt(heap_.top().first);
    heap_.pop();
  }
  return ans;
}

}  // namespace hydra
