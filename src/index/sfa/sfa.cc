#include "index/sfa/sfa.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/rng.h"
#include "index/leaf_scanner.h"
#include "index/leaf_sort.h"
#include "index/tree_search.h"

namespace hydra {

Result<std::unique_ptr<SfaIndex>> SfaIndex::Build(const Dataset& data,
                                                  SeriesProvider* provider,
                                                  const SfaOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (provider == nullptr || provider->num_series() != data.size() ||
      provider->series_length() != data.length()) {
    return Status::InvalidArgument("provider does not match dataset");
  }
  if (options.num_features == 0 || options.alphabet < 2 ||
      options.alphabet > 256) {
    return Status::InvalidArgument(
        "num_features must be > 0 and alphabet in [2, 256]");
  }
  if (options.leaf_capacity == 0) {
    return Status::InvalidArgument("leaf_capacity must be > 0");
  }
  std::unique_ptr<SfaIndex> index(new SfaIndex(provider, options));
  index->series_length_ = data.length();
  index->dft_ =
      std::make_unique<DftFeatures>(data.length(), options.num_features);
  const size_t f = index->dft_->num_features();

  // One transform pass over the data; features are reused for binning and
  // for the word encoding.
  std::vector<double> features(data.size() * f);
  for (size_t i = 0; i < data.size(); ++i) {
    index->dft_->Transform(data.series(i),
                           std::span<double>(features.data() + i * f, f));
  }

  // MCB: per-coefficient equi-depth boundaries from a sample, so every
  // symbol covers roughly the same number of series.
  Rng rng(options.seed);
  const size_t sample_n = std::min(options.binning_sample, data.size());
  std::vector<size_t> sample_ids(data.size());
  std::iota(sample_ids.begin(), sample_ids.end(), 0);
  for (size_t i = 0; i < sample_n; ++i) {
    std::swap(sample_ids[i], sample_ids[i + rng.NextUint64(data.size() - i)]);
  }
  index->bins_.resize(f);
  std::vector<double> column(sample_n);
  for (size_t d = 0; d < f; ++d) {
    for (size_t i = 0; i < sample_n; ++i) {
      column[i] = features[sample_ids[i] * f + d];
    }
    std::sort(column.begin(), column.end());
    index->bins_[d].resize(options.alphabet - 1);
    for (size_t b = 1; b < options.alphabet; ++b) {
      size_t pos = std::min(sample_n - 1, b * sample_n / options.alphabet);
      index->bins_[d][b - 1] = column[pos];
    }
    // Equal quantiles can collide on discrete data; keep cut points
    // strictly nondecreasing (duplicates simply yield empty symbols).
    for (size_t b = 1; b < index->bins_[d].size(); ++b) {
      index->bins_[d][b] = std::max(index->bins_[d][b],
                                    index->bins_[d][b - 1]);
    }
  }

  // Trie root + bulk insertion of words.
  index->nodes_.push_back({});
  std::vector<uint8_t> word(f);
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t d = 0; d < f; ++d) {
      word[d] = index->Quantize(d, features[i * f + d]);
    }
    index->Insert(static_cast<int64_t>(i), word);
  }
  // Leaf ids sorted once at build time so consecutive ids coalesce into
  // contiguous runs (batch kernel + sequential readahead; see
  // index/leaf_scanner.h). Ascending bulk load plus order-preserving
  // splits leave leaves sorted already, so this is a guarantee, not a
  // pass.
  for (Node& node : index->nodes_) {
    index->SortLeafByIds(&node);
  }

  index->histogram_ = std::make_unique<DistanceHistogram>(
      data, options.histogram_pairs, options.histogram_bins, rng);
  return index;
}

uint8_t SfaIndex::Quantize(size_t dim, double value) const {
  const std::vector<double>& cuts = bins_[dim];
  return static_cast<uint8_t>(
      std::upper_bound(cuts.begin(), cuts.end(), value) - cuts.begin());
}

void SfaIndex::Insert(int64_t id, const std::vector<uint8_t>& word) {
  int32_t node_id = 0;
  while (true) {
    Node& node = nodes_[node_id];
    ++node.count;
    if (node.children.empty()) break;
    // Children are keyed by the symbol at dimension `prefix_len`; the
    // child vector is indexed directly by symbol (alphabet-sized).
    node_id = node.children[word[node.prefix_len]];
  }
  Node& leaf = nodes_[node_id];
  leaf.series_ids.push_back(id);
  leaf.leaf_words.insert(leaf.leaf_words.end(), word.begin(), word.end());
  if (leaf.series_ids.size() > options_.leaf_capacity &&
      leaf.prefix_len < dft_->num_features()) {
    SplitLeaf(node_id);
  }
}

void SfaIndex::SplitLeaf(int32_t node_id) {
  const size_t f = dft_->num_features();
  const size_t next_dim = nodes_[node_id].prefix_len;
  const size_t n = nodes_[node_id].series_ids.size();

  // One child per symbol of the next coefficient (created eagerly; empty
  // children stay leaves with count 0 and are never pushed by search
  // because their MinDist sees an empty envelope... they are cheap).
  std::vector<int32_t> children(options_.alphabet);
  for (size_t sym = 0; sym < options_.alphabet; ++sym) {
    Node child;
    child.prefix_len = static_cast<uint16_t>(next_dim + 1);
    child.prefix = nodes_[node_id].prefix;
    child.prefix.push_back(static_cast<uint8_t>(sym));
    children[sym] = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(std::move(child));
  }
  for (size_t i = 0; i < n; ++i) {
    const Node& leaf = nodes_[node_id];
    uint8_t sym = leaf.leaf_words[i * f + next_dim];
    Node& child = nodes_[children[sym]];
    child.series_ids.push_back(leaf.series_ids[i]);
    child.leaf_words.insert(child.leaf_words.end(),
                            leaf.leaf_words.begin() + i * f,
                            leaf.leaf_words.begin() + (i + 1) * f);
    ++child.count;
  }
  Node& parent = nodes_[node_id];
  parent.children = std::move(children);
  parent.series_ids.clear();
  parent.series_ids.shrink_to_fit();
  parent.leaf_words.clear();
  parent.leaf_words.shrink_to_fit();
}

double SfaIndex::BinDistSq(size_t dim, uint8_t sym, double value) const {
  const std::vector<double>& cuts = bins_[dim];
  double lo = sym == 0 ? -std::numeric_limits<double>::infinity()
                       : cuts[sym - 1];
  double hi = sym >= cuts.size() ? std::numeric_limits<double>::infinity()
                                 : cuts[sym];
  double d = 0.0;
  if (value < lo) {
    d = lo - value;
  } else if (value > hi) {
    d = value - hi;
  }
  return d * d;
}

double SfaIndex::MinDistSq(const QueryContext& ctx, int32_t id) const {
  const Node& node = nodes_[id];
  if (node.count == 0) return std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (size_t d = 0; d < node.prefix.size(); ++d) {
    sum += BinDistSq(d, node.prefix[d], ctx.features[d]);
  }
  return sum;
}

void SfaIndex::SortLeafByIds(Node* node) const {
  if (node->children.empty()) {  // leaves are the childless nodes
    SortLeafPayloadByIds(&node->series_ids, &node->leaf_words,
                         dft_->num_features());
  }
}

Status SfaIndex::ScanLeaf(int32_t id, ParallelLeafScanner* scanner) const {
  return scanner->ScanIds(provider_, nodes_[id].series_ids).status();
}

size_t SfaIndex::PrefetchLeaf(int32_t id, ParallelLeafScanner* scanner,
                              size_t max_pages) const {
  return scanner->PrefetchIds(provider_, nodes_[id].series_ids, max_pages);
}

Result<KnnAnswer> SfaIndex::Search(std::span<const float> query,
                                   const SearchParams& params,
                                   QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length mismatch");
  }
  QueryContext ctx = MakeQueryContext(query);
  double r_delta = 0.0;
  if (params.mode == SearchMode::kDeltaEpsilon && params.delta < 1.0) {
    r_delta = histogram_->DeltaRadius(params.delta, provider_->num_series());
  }
  return TreeKnnSearch(*this, ctx, query, params, r_delta, counters);
}

size_t SfaIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const auto& b : bins_) total += b.size() * sizeof(double);
  for (const Node& n : nodes_) {
    total += sizeof(Node) + n.prefix.size() +
             n.children.size() * sizeof(int32_t) +
             n.series_ids.size() * sizeof(int64_t) + n.leaf_words.size();
  }
  return total;
}

size_t SfaIndex::num_leaves() const {
  size_t leaves = 0;
  for (const Node& n : nodes_) leaves += n.children.empty() ? 1 : 0;
  return leaves;
}

}  // namespace hydra
