#ifndef HYDRA_INDEX_SFA_SFA_H_
#define HYDRA_INDEX_SFA_SFA_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/distance_histogram.h"
#include "index/answer_set.h"
#include "index/index.h"
#include "storage/buffer_manager.h"
#include "transform/dft.h"

namespace hydra {

class ParallelLeafScanner;  // exec/parallel_scanner.h

// SFA trie (Schäfer & Högqvist 2012): the Symbolic Fourier Approximation
// index, listed in the paper's taxonomy alongside the SAX-family methods.
// Series are represented by the first DFT coefficients, quantized with
// Multiple Coefficient Binning (MCB): per-coefficient equi-depth bins
// learned from the data, so symbols are uniformly used even for skewed
// spectra (contrast with SAX's fixed Gaussian breakpoints). Words are
// organized in a prefix trie: a node constrains the first `prefix_len`
// symbols; splitting a leaf extends the prefix by one coefficient.
//
// MinDist sums per-constrained-coefficient distances to the symbol bins,
// which lower-bounds the truncated-DFT distance and hence (Parseval) the
// true Euclidean distance — making exact and δ-ε search admissible via
// the same generic Algorithms 1 & 2 as the other trees.
struct SfaOptions {
  size_t num_features = 16;   // retained DFT dimensions (word length)
  size_t alphabet = 8;        // symbols per coefficient (MCB bins)
  size_t leaf_capacity = 64;
  size_t binning_sample = 4096;  // series sampled to learn MCB bins
  size_t histogram_pairs = 20000;
  size_t histogram_bins = 512;
  uint64_t seed = 42;
};

class SfaIndex : public Index {
 public:
  static Result<std::unique_ptr<SfaIndex>> Build(
      const Dataset& data, SeriesProvider* provider,
      const SfaOptions& options = {});

  std::string name() const override { return "sfa"; }
  IndexCapabilities capabilities() const override {
    IndexCapabilities c;
    c.exact = true;
    c.ng_approximate = true;
    c.epsilon_approximate = true;
    c.delta_epsilon_approximate = true;
    c.disk_resident = true;
    c.summarization = "SFA";
    return c;
  }
  size_t MemoryBytes() const override;

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

  // --- TreeKnnSearch interface ---
  struct QueryContext {
    std::vector<double> features;
  };
  QueryContext MakeQueryContext(std::span<const float> query) const {
    return {dft_->Transform(query)};
  }
  std::vector<int32_t> SearchRoots() const { return {0}; }
  bool IsLeaf(int32_t id) const { return nodes_[id].children.empty(); }
  std::vector<int32_t> NodeChildren(int32_t id) const {
    return nodes_[id].children;
  }
  double MinDistSq(const QueryContext& ctx, int32_t id) const;
  Status ScanLeaf(int32_t id, ParallelLeafScanner* scanner) const;
  // Readahead hint for a queued leaf (tree_search.h): announces up to
  // max_pages pages of the leaf's (sorted) id runs to the provider's
  // prefetcher. Returns pages announced.
  size_t PrefetchLeaf(int32_t id, ParallelLeafScanner* scanner,
                      size_t max_pages) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;
  // MCB boundaries of coefficient d (alphabet − 1 ascending cut points).
  const std::vector<double>& Bins(size_t d) const { return bins_[d]; }

 private:
  struct Node {
    uint16_t prefix_len = 0;
    std::vector<uint8_t> prefix;     // symbols for dims [0, prefix_len)
    std::vector<int32_t> children;   // empty = leaf
    std::vector<int64_t> series_ids;
    std::vector<uint8_t> leaf_words;  // ids.size() × num_features
    size_t count = 0;
  };

  SfaIndex(SeriesProvider* provider, const SfaOptions& options)
      : provider_(provider), options_(options) {}

  uint8_t Quantize(size_t dim, double value) const;
  void Insert(int64_t id, const std::vector<uint8_t>& word);
  void SplitLeaf(int32_t node_id);
  // Sorts a leaf's ids (permuting leaf_words alongside); see Build.
  void SortLeafByIds(Node* node) const;
  // Squared distance from value to symbol bin `sym` of dimension `dim`.
  double BinDistSq(size_t dim, uint8_t sym, double value) const;

  SeriesProvider* provider_;  // not owned
  SfaOptions options_;
  std::unique_ptr<DftFeatures> dft_;
  std::vector<std::vector<double>> bins_;  // per-dim MCB boundaries
  std::vector<Node> nodes_;
  std::unique_ptr<DistanceHistogram> histogram_;
  size_t series_length_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_SFA_SFA_H_
