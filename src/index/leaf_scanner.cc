#include "index/leaf_scanner.h"

#include <algorithm>
#include <string>

namespace hydra {

void LeafScanner::Scan(std::span<const float> series, int64_t id) {
  bool abandoned = false;
  double d2 = kernels_.squared_euclidean_ea(query_.data(), series.data(),
                                            query_.size(),
                                            answers_->KthDistanceSq(),
                                            &abandoned);
  if (counters_ != nullptr) {
    ++(abandoned ? counters_->abandoned_distances : counters_->full_distances);
  }
  answers_->Offer(d2, id);
}

bool LeafScanner::ScanFrom(SeriesProvider* provider, int64_t id) {
  PinnedRun run = provider->PinSeries(static_cast<uint64_t>(id), counters_);
  if (run.empty()) return false;
  Scan(run.span(), id);
  return true;
}

Result<size_t> LeafScanner::ScanIds(SeriesProvider* provider,
                                    std::span<const int64_t> ids) {
  for (int64_t id : ids) {
    if (!ScanFrom(provider, id)) {
      return Status::IoError("series " + std::to_string(id) +
                             " fetch failed");
    }
  }
  return ids.size();
}

size_t LeafScanner::ScanIds(const Dataset& data,
                            std::span<const int64_t> ids) {
  for (int64_t id : ids) {
    Scan(data.series(static_cast<size_t>(id)), id);
  }
  return ids.size();
}

size_t LeafScanner::ScanContiguous(const float* block, size_t count,
                                   size_t stride, int64_t first_id) {
  if (batch_out_.size() < std::min(count, kChunk)) {
    batch_out_.resize(std::min(count, kChunk));
  }
  for (size_t done = 0; done < count; done += kChunk) {
    const size_t chunk = std::min(kChunk, count - done);
    const double threshold = answers_->KthDistanceSq();
    size_t completed = kernels_.squared_euclidean_batch(
        query_.data(), query_.size(), block + done * stride, chunk, stride,
        threshold, batch_out_.data());
    if (counters_ != nullptr) {
      counters_->full_distances += completed;
      counters_->abandoned_distances += chunk - completed;
    }
    for (size_t c = 0; c < chunk; ++c) {
      answers_->Offer(batch_out_[c], first_id + static_cast<int64_t>(done + c));
    }
  }
  return count;
}

Result<size_t> LeafScanner::ScanRange(SeriesProvider* provider,
                                      uint64_t first, uint64_t count) {
  const size_t len = provider->series_length();
  size_t scanned = 0;
  uint64_t i = first;
  const uint64_t end = first + count;
  while (i < end) {
    PinnedRun run = provider->PinRun(i, end - i, counters_);
    if (run.empty()) {
      return Status::IoError("series run at " + std::to_string(i) +
                             " fetch failed");
    }
    const size_t run_count = run.span().size() / len;
    ScanContiguous(run.span().data(), run_count, len,
                   static_cast<int64_t>(i));
    scanned += run_count;
    i += run_count;
  }
  return scanned;
}

}  // namespace hydra
