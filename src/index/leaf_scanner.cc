#include "index/leaf_scanner.h"

#include <algorithm>
#include <string>

#include "common/options.h"
#include "index/index.h"

namespace hydra {

size_t DefaultPrefetchDepth() {
  // Parse-once: the process-wide default may not drift mid-run.
  static const size_t depth = EnvOrSize("HYDRA_PREFETCH", 0);
  return depth;
}

size_t ResolvePrefetchDepth(const SearchParams& params) {
  if (params.prefetch_depth == SearchParams::kPrefetchOff) return 0;
  // explicit param > HYDRA_PREFETCH > 0 (off) — the system-wide
  // ResolveOption precedence, with the parse-once default above.
  return params.prefetch_depth != 0 ? params.prefetch_depth
                                    : DefaultPrefetchDepth();
}

std::shared_ptr<CancellationToken> ResolveCancellation(
    const SearchParams& params) {
  if (params.cancel != nullptr) return params.cancel;
  if (params.deadline_ms > 0) {
    return CancellationToken::WithDeadline(params.deadline_ms);
  }
  return nullptr;
}

size_t LeafScanner::RunEnd(std::span<const int64_t> ids, size_t start) {
  size_t stop = start + 1;
  while (stop < ids.size() && ids[stop] == ids[stop - 1] + 1) ++stop;
  return stop;
}

size_t LeafScanner::AnnounceRuns(SeriesProvider* provider,
                                 std::span<const int64_t> ids, size_t from,
                                 size_t max_pages, uint64_t series_per_page,
                                 QueryCounters* counters,
                                 std::shared_ptr<CancellationToken> cancel) {
  uint64_t pages = 0;
  size_t j = from;
  while (j < ids.size() && pages < max_pages) {
    const size_t stop = RunEnd(ids, j);
    const uint64_t first = static_cast<uint64_t>(ids[j]);
    uint64_t count = stop - j;
    // Clip the run to the remaining page budget: one long consecutive
    // run must not announce past max_pages (the serving session's
    // per-query share depends on this bound holding).
    const uint64_t last_allowed_page =
        first / series_per_page + (max_pages - pages) - 1;
    count = std::min(count,
                     (last_allowed_page + 1) * series_per_page - first);
    provider->Prefetch(first, count, counters, cancel);
    pages += (first + count - 1) / series_per_page -
             first / series_per_page + 1;
    j = stop;
  }
  return static_cast<size_t>(pages);
}

void LeafScanner::Scan(std::span<const float> series, int64_t id) {
  bool abandoned = false;
  double d2 = kernels_.squared_euclidean_ea(query_.data(), series.data(),
                                            query_.size(),
                                            answers_->KthDistanceSq(),
                                            &abandoned);
  if (counters_ != nullptr) {
    ++(abandoned ? counters_->abandoned_distances : counters_->full_distances);
  }
  answers_->Offer(d2, id);
}

bool LeafScanner::ScanFrom(SeriesProvider* provider, int64_t id) {
  PinnedRun run = provider->PinSeries(static_cast<uint64_t>(id), counters_);
  if (run.empty()) return false;
  Scan(run.span(), id);
  return true;
}

size_t LeafScanner::PrefetchIds(SeriesProvider* provider,
                                std::span<const int64_t> ids,
                                size_t max_pages) {
  if (provider == nullptr || max_pages == 0 || ids.empty() ||
      provider->MaxPrefetchPages() == 0) {
    return 0;
  }
  return AnnounceRuns(provider, ids, 0, max_pages, provider->SeriesPerPage(),
                      counters_, cancel_);
}

Result<size_t> LeafScanner::ScanIds(SeriesProvider* provider,
                                    std::span<const int64_t> ids) {
  const bool announce =
      prefetch_depth_ > 0 && provider->MaxPrefetchPages() > 0;
  const uint64_t spp = announce ? provider->SeriesPerPage() : 1;
  const size_t len = provider->series_length();
  // Re-announce once half the lookahead window is consumed, not at every
  // run: scattered id lists (~1 page per run) would otherwise pay a
  // queue-lock round trip per candidate.
  const size_t announce_every = std::max<size_t>(1, prefetch_depth_ / 2);
  size_t runs_since_announce = announce_every;
  size_t start = 0;
  while (start < ids.size()) {
    // Cancellation point: one clock check per run keeps deadline
    // responsiveness at page granularity without taxing the inner loop.
    if (cancel_ != nullptr) {
      HYDRA_RETURN_IF_ERROR(cancel_->Check());
    }
    const size_t stop = RunEnd(ids, start);
    // Announce the runs after this one before evaluating it, so the
    // prefetch workers read ahead while the kernels run.
    if (announce && stop < ids.size() &&
        ++runs_since_announce > announce_every) {
      AnnounceRuns(provider, ids, stop, prefetch_depth_, spp, counters_,
                   cancel_);
      runs_since_announce = 0;
    }
    if (stop - start == 1) {
      // Isolated id: the seed single-candidate path, bit for bit.
      HYDRA_ASSIGN_OR_RETURN(
          PinnedRun run,
          provider->PinSeriesChecked(static_cast<uint64_t>(ids[start]),
                                     counters_));
      Scan(run.span(), ids[start]);
    } else {
      // Consecutive ids ride the batch kernel page-run by page-run.
      uint64_t i = static_cast<uint64_t>(ids[start]);
      const uint64_t end = i + (stop - start);
      while (i < end) {
        HYDRA_ASSIGN_OR_RETURN(PinnedRun run,
                               provider->PinRunChecked(i, end - i, counters_));
        const size_t run_count = run.span().size() / len;
        ScanContiguous(run.span().data(), run_count, len,
                       static_cast<int64_t>(i));
        i += run_count;
      }
    }
    start = stop;
  }
  return ids.size();
}

size_t LeafScanner::ScanIds(const Dataset& data,
                            std::span<const int64_t> ids) {
  for (int64_t id : ids) {
    Scan(data.series(static_cast<size_t>(id)), id);
  }
  return ids.size();
}

size_t LeafScanner::ScanContiguous(const float* block, size_t count,
                                   size_t stride, int64_t first_id) {
  if (batch_out_.size() < std::min(count, kChunk)) {
    batch_out_.resize(std::min(count, kChunk));
  }
  for (size_t done = 0; done < count; done += kChunk) {
    const size_t chunk = std::min(kChunk, count - done);
    const double threshold = answers_->KthDistanceSq();
    size_t completed = kernels_.squared_euclidean_batch(
        query_.data(), query_.size(), block + done * stride, chunk, stride,
        threshold, batch_out_.data());
    if (counters_ != nullptr) {
      counters_->full_distances += completed;
      counters_->abandoned_distances += chunk - completed;
    }
    for (size_t c = 0; c < chunk; ++c) {
      answers_->Offer(batch_out_[c], first_id + static_cast<int64_t>(done + c));
    }
  }
  return count;
}

Result<size_t> LeafScanner::ScanRange(SeriesProvider* provider,
                                      uint64_t first, uint64_t count) {
  const size_t len = provider->series_length();
  const uint64_t lookahead =
      prefetch_depth_ > 0 ? prefetch_depth_ * provider->SeriesPerPage() : 0;
  size_t scanned = 0;
  uint64_t i = first;
  const uint64_t end = first + count;
  // Re-announce once half the lookahead window is consumed, not per
  // page: the prefetcher dedups, but each call still costs a queue-lock
  // round trip.
  uint64_t announce_at = i;
  while (i < end) {
    // Cancellation point: once per pinned page.
    if (cancel_ != nullptr) {
      HYDRA_RETURN_IF_ERROR(cancel_->Check());
    }
    HYDRA_ASSIGN_OR_RETURN(PinnedRun run,
                           provider->PinRunChecked(i, end - i, counters_));
    const size_t run_count = run.span().size() / len;
    // The current page is pinned; announce the next window before
    // evaluating it so its reads overlap these kernels.
    const uint64_t next = i + run_count;
    if (lookahead > 0 && next < end && next >= announce_at) {
      provider->Prefetch(next, std::min<uint64_t>(lookahead, end - next),
                         counters_, cancel_);
      announce_at = next + std::max<uint64_t>(1, lookahead / 2);
    }
    ScanContiguous(run.span().data(), run_count, len,
                   static_cast<int64_t>(i));
    scanned += run_count;
    i += run_count;
  }
  return scanned;
}

}  // namespace hydra
