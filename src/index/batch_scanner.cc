#include "index/batch_scanner.h"

#include <algorithm>

#include "index/leaf_scanner.h"

namespace hydra {

size_t BatchLeafScanner::AddQuery(std::span<const float> query,
                                  AnswerSet* answers, QueryCounters* counters,
                                  std::shared_ptr<CancellationToken> cancel) {
  slots_.push_back(Slot{query, answers, counters, std::move(cancel), Status()});
  return slots_.size() - 1;
}

size_t BatchLeafScanner::live_count() const {
  size_t live = 0;
  for (const Slot& slot : slots_) {
    if (slot.status.ok()) ++live;
  }
  return live;
}

void BatchLeafScanner::Fail(size_t slot, Status status) {
  if (slots_[slot].status.ok()) {
    slots_[slot].status = std::move(status);
  }
}

void BatchLeafScanner::CheckCancellations() {
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (!slot.status.ok() || slot.cancel == nullptr) continue;
    Status st = slot.cancel->Check();
    if (!st.ok()) slot.status = std::move(st);
  }
}

std::span<const size_t> BatchLeafScanner::ActiveLive(
    std::span<const size_t> slots) {
  active_scratch_.clear();
  for (size_t slot : slots) {
    Slot& s = slots_[slot];
    if (!s.status.ok()) continue;
    if (s.cancel != nullptr) {
      Status st = s.cancel->Check();
      if (!st.ok()) {
        s.status = std::move(st);
        continue;
      }
    }
    active_scratch_.push_back(slot);
  }
  return active_scratch_;
}

void BatchLeafScanner::FailAll(std::span<const size_t> slots,
                               const Status& status) {
  for (size_t slot : slots) {
    if (slots_[slot].status.ok()) slots_[slot].status = status;
  }
}

void BatchLeafScanner::ScanContiguous(const float* block, size_t count,
                                      size_t stride, int64_t first_id,
                                      std::span<const size_t> slots) {
  if (slots.empty() || count == 0) return;
  const size_t nq = slots.size();
  query_ptrs_.resize(nq);
  thresholds_.resize(nq);
  if (out_.size() < nq * std::min(count, kChunk)) {
    out_.resize(nq * std::min(count, kChunk));
    abandoned_.resize(nq * std::min(count, kChunk));
  }
  const size_t n = slots_[slots[0]].query.size();
  for (size_t done = 0; done < count; done += kChunk) {
    const size_t chunk = std::min(kChunk, count - done);
    // Per-query thresholds from each query's OWN answer set, refreshed at
    // the same chunk granularity as the per-query scanner.
    for (size_t qi = 0; qi < nq; ++qi) {
      const Slot& slot = slots_[slots[qi]];
      query_ptrs_[qi] = slot.query.data();
      thresholds_[qi] = slot.answers->KthDistanceSq();
    }
    kernels_.squared_euclidean_multi(query_ptrs_.data(), nq, n,
                                     block + done * stride, chunk, stride,
                                     thresholds_.data(), out_.data(),
                                     abandoned_.data());
    for (size_t qi = 0; qi < nq; ++qi) {
      Slot& slot = slots_[slots[qi]];
      const double* row = out_.data() + qi * chunk;
      const uint8_t* flags = abandoned_.data() + qi * chunk;
      if (slot.counters != nullptr) {
        size_t completed = 0;
        for (size_t c = 0; c < chunk; ++c) completed += flags[c] ? 0 : 1;
        slot.counters->full_distances += completed;
        slot.counters->abandoned_distances += chunk - completed;
      }
      for (size_t c = 0; c < chunk; ++c) {
        slot.answers->Offer(row[c], first_id + static_cast<int64_t>(done + c));
      }
    }
  }
}

void BatchLeafScanner::ScanIds(SeriesProvider* provider,
                               std::span<const int64_t> ids,
                               std::span<const size_t> slots) {
  std::span<const size_t> active = ActiveLive(slots);
  if (active.empty() || ids.empty()) return;
  const bool announce =
      prefetch_depth_ > 0 && provider->MaxPrefetchPages() > 0;
  const uint64_t spp = announce ? provider->SeriesPerPage() : 1;
  const size_t len = provider->series_length();
  const size_t announce_every = std::max<size_t>(1, prefetch_depth_ / 2);
  size_t runs_since_announce = announce_every;
  size_t start = 0;
  while (start < ids.size()) {
    // Cancellation point per run, per participating slot: a fired token
    // removes only its own slot (same granularity as LeafScanner).
    active = ActiveLive(active);
    if (active.empty()) return;
    // Shared physical I/O is charged to the leader so every hit/miss/
    // byte lands on exactly one query (sums match pool totals).
    const Slot& leader = slots_[active.front()];
    const size_t stop = LeafScanner::RunEnd(ids, start);
    if (announce && stop < ids.size() &&
        ++runs_since_announce > announce_every) {
      LeafScanner::AnnounceRuns(provider, ids, stop, prefetch_depth_, spp,
                                leader.counters, leader.cancel);
      runs_since_announce = 0;
    }
    if (stop - start == 1) {
      Result<PinnedRun> run = provider->PinSeriesChecked(
          static_cast<uint64_t>(ids[start]), leader.counters);
      if (!run.ok()) {
        FailAll(active, run.status());
        return;
      }
      ScanContiguous(run.value().span().data(), 1, len, ids[start], active);
    } else {
      uint64_t i = static_cast<uint64_t>(ids[start]);
      const uint64_t end = i + (stop - start);
      while (i < end) {
        Result<PinnedRun> run =
            provider->PinRunChecked(i, end - i, leader.counters);
        if (!run.ok()) {
          FailAll(active, run.status());
          return;
        }
        const size_t run_count = run.value().span().size() / len;
        ScanContiguous(run.value().span().data(), run_count, len,
                       static_cast<int64_t>(i), active);
        i += run_count;
      }
    }
    start = stop;
  }
}

void BatchLeafScanner::ScanRange(SeriesProvider* provider, uint64_t first,
                                 uint64_t count,
                                 std::span<const size_t> slots) {
  std::span<const size_t> active = ActiveLive(slots);
  if (active.empty() || count == 0) return;
  const size_t len = provider->series_length();
  const uint64_t lookahead =
      prefetch_depth_ > 0 ? prefetch_depth_ * provider->SeriesPerPage() : 0;
  uint64_t i = first;
  const uint64_t end = first + count;
  uint64_t announce_at = i;
  while (i < end) {
    // Cancellation point per pinned page, per participating slot.
    active = ActiveLive(active);
    if (active.empty()) return;
    const Slot& leader = slots_[active.front()];
    Result<PinnedRun> run = provider->PinRunChecked(i, end - i, leader.counters);
    if (!run.ok()) {
      FailAll(active, run.status());
      return;
    }
    const size_t run_count = run.value().span().size() / len;
    const uint64_t next = i + run_count;
    if (lookahead > 0 && next < end && next >= announce_at) {
      provider->Prefetch(next, std::min<uint64_t>(lookahead, end - next),
                         leader.counters, leader.cancel);
      announce_at = next + std::max<uint64_t>(1, lookahead / 2);
    }
    ScanContiguous(run.value().span().data(), run_count, len,
                   static_cast<int64_t>(i), active);
    i += run_count;
  }
}

}  // namespace hydra
