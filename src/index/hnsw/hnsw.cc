#include "index/hnsw/hnsw.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "distance/euclidean.h"
#include "index/answer_set.h"
#include "index/leaf_scanner.h"

namespace hydra {

Result<std::unique_ptr<HnswIndex>> HnswIndex::Build(
    const Dataset& data, const HnswOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (options.M < 2) return Status::InvalidArgument("M must be >= 2");
  std::unique_ptr<HnswIndex> index(new HnswIndex(data, options));

  Rng rng(options.seed);
  const double level_scale = 1.0 / std::log(static_cast<double>(options.M));
  const size_t n = data.size();
  index->links_.resize(n);
  index->levels_.resize(n);

  for (size_t i = 0; i < n; ++i) {
    // Geometric level draw: floor(-ln(U) * scale).
    double u = std::max(rng.NextDouble(), 1e-18);
    size_t level = static_cast<size_t>(-std::log(u) * level_scale);
    index->levels_[i] = level;
    index->links_[i].resize(level + 1);

    if (i == 0) {
      index->entry_point_ = 0;
      index->max_level_ = level;
      continue;
    }

    auto query = data.series(i);
    size_t entry = index->entry_point_;
    // Greedy descent through layers above the node's level.
    for (size_t l = index->max_level_; l > level; --l) {
      entry = index->GreedyClosest(query, entry, l, nullptr);
      if (l == 0) break;
    }
    // Beam insertion on layers min(level, max_level_) .. 0.
    for (size_t l = std::min(level, index->max_level_) + 1; l-- > 0;) {
      HYDRA_ASSIGN_OR_RETURN(
          auto cands, index->SearchLayer(query, entry, l,
                                         options.ef_construction, nullptr));
      if (!cands.empty()) entry = cands.front().second;
      // Layer 0 traditionally allows 2M links.
      size_t m_max = l == 0 ? 2 * options.M : options.M;
      std::vector<size_t> selected =
          index->SelectNeighbors(i, cands, options.M);
      index->links_[i][l] = selected;
      for (size_t nb : selected) {
        auto& back = index->links_[nb][l];
        back.push_back(i);
        if (back.size() > m_max) {
          // Re-prune the overfull neighbor with the same heuristic.
          std::vector<std::pair<double, size_t>> nb_cands;
          nb_cands.reserve(back.size());
          for (size_t x : back) {
            nb_cands.emplace_back(
                SquaredEuclidean(data.series(nb), data.series(x)), x);
          }
          std::sort(nb_cands.begin(), nb_cands.end());
          back = index->SelectNeighbors(nb, nb_cands, m_max);
        }
      }
    }
    if (level > index->max_level_) {
      index->max_level_ = level;
      index->entry_point_ = i;
    }
  }
  return index;
}

size_t HnswIndex::GreedyClosest(std::span<const float> query, size_t entry,
                                size_t level,
                                QueryCounters* counters) const {
  size_t cur = entry;
  double cur_d = SquaredEuclidean(query, data_->series(cur));
  if (counters != nullptr) ++counters->full_distances;
  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t nb : Neighbors(cur, level)) {
      double d = SquaredEuclidean(query, data_->series(nb));
      if (counters != nullptr) ++counters->full_distances;
      if (d < cur_d) {
        cur_d = d;
        cur = nb;
        improved = true;
      }
    }
  }
  return cur;
}

Result<std::vector<std::pair<double, size_t>>> HnswIndex::SearchLayer(
    std::span<const float> query, size_t entry, size_t level, size_t ef,
    QueryCounters* counters,
    const std::shared_ptr<CancellationToken>& cancel) const {
  std::unordered_set<size_t> visited{entry};
  using Pair = std::pair<double, size_t>;
  // Candidates: min-heap by distance. Results: max-heap bounded by ef.
  std::priority_queue<Pair, std::vector<Pair>, std::greater<Pair>> cands;
  std::priority_queue<Pair> results;
  double d0 = SquaredEuclidean(query, data_->series(entry));
  if (counters != nullptr) ++counters->full_distances;
  cands.emplace(d0, entry);
  results.emplace(d0, entry);

  while (!cands.empty()) {
    if (cancel != nullptr) {
      HYDRA_RETURN_IF_ERROR(cancel->Check());
    }
    auto [d, node] = cands.top();
    if (results.size() >= ef && d > results.top().first) break;
    cands.pop();
    for (size_t nb : Neighbors(node, level)) {
      if (!visited.insert(nb).second) continue;
      double dn = SquaredEuclidean(query, data_->series(nb));
      if (counters != nullptr) ++counters->full_distances;
      if (results.size() < ef || dn < results.top().first) {
        cands.emplace(dn, nb);
        results.emplace(dn, nb);
        if (results.size() > ef) results.pop();
      }
    }
  }
  std::vector<Pair> out(results.size());
  for (size_t i = results.size(); i-- > 0;) {
    out[i] = results.top();
    results.pop();
  }
  return out;
}

std::vector<size_t> HnswIndex::SelectNeighbors(
    size_t node, std::vector<std::pair<double, size_t>> candidates,
    size_t m) const {
  // Heuristic selection: take candidates in distance order, keeping one
  // only if no already-kept neighbor is closer to it than the new node is
  // — this spreads links across directions instead of clustering them.
  std::vector<size_t> selected;
  for (const auto& [d, cand] : candidates) {
    if (cand == node) continue;
    if (selected.size() >= m) break;
    bool keep = true;
    for (size_t s : selected) {
      double d_cs = SquaredEuclidean(data_->series(cand), data_->series(s));
      if (d_cs < d) {
        keep = false;
        break;
      }
    }
    if (keep) selected.push_back(cand);
  }
  return selected;
}

Result<KnnAnswer> HnswIndex::Search(std::span<const float> query,
                                    const SearchParams& params,
                                    QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (params.mode != SearchMode::kNgApproximate) {
    return Status::Unimplemented(
        "hnsw supports ng-approximate search only");
  }
  if (query.size() != data_->length()) {
    return Status::InvalidArgument("query length mismatch");
  }
  size_t ef = params.efs == 0 ? options_.default_ef_search : params.efs;
  ef = std::max(ef, params.k);

  std::shared_ptr<CancellationToken> cancel = ResolveCancellation(params);
  size_t entry = entry_point_;
  for (size_t l = max_level_; l > 0; --l) {
    // Cancellation point between descent layers; the greedy walk per
    // layer is short, so the beam below carries the per-pop checks.
    if (cancel != nullptr) {
      HYDRA_RETURN_IF_ERROR(cancel->Check());
    }
    entry = GreedyClosest(query, entry, l, counters);
  }
  HYDRA_ASSIGN_OR_RETURN(auto found,
                         SearchLayer(query, entry, 0, ef, counters, cancel));

  AnswerSet answers(params.k);
  for (const auto& [d, id] : found) {
    answers.Offer(d, static_cast<int64_t>(id));
  }
  return answers.Finish();
}

size_t HnswIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const auto& node : links_) {
    total += sizeof(node);
    for (const auto& level : node) {
      total += sizeof(level) + level.size() * sizeof(size_t);
    }
  }
  // HNSW keeps the raw vectors in memory.
  total += data_->SizeBytes();
  return total;
}

size_t HnswIndex::NumNeighbors(size_t node, size_t level) const {
  if (level >= links_[node].size()) return 0;
  return links_[node][level].size();
}

}  // namespace hydra
