#ifndef HYDRA_INDEX_HNSW_HNSW_H_
#define HYDRA_INDEX_HNSW_HNSW_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "index/index.h"

namespace hydra {

// Hierarchical Navigable Small World graph (Malkov & Yashunin 2016).
// Multi-layer proximity graph: layer assignment is geometric with scale
// 1/ln(M); search greedily descends from the top layer to layer 0 and runs
// a best-first beam of width ef there. Neighbor sets are pruned with the
// original heuristic (keep a candidate only if it is closer to the new
// element than to any already-selected neighbor), which preserves graph
// navigability on clustered data.
//
// In-memory only and ng-approximate only, exactly as evaluated in the
// paper (the efs knob trades accuracy for speed at query time).
struct HnswOptions {
  size_t M = 16;                // bidirectional links per node (layer > 0)
  size_t ef_construction = 200;
  size_t default_ef_search = 64;
  uint64_t seed = 7;
};

class HnswIndex : public Index {
 public:
  static Result<std::unique_ptr<HnswIndex>> Build(
      const Dataset& data, const HnswOptions& options = {});

  std::string name() const override { return "hnsw"; }
  IndexCapabilities capabilities() const override {
    IndexCapabilities c;
    c.ng_approximate = true;
    c.disk_resident = false;
    c.summarization = "graph";
    return c;
  }
  size_t MemoryBytes() const override;

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

  // Introspection for tests.
  size_t max_level() const { return max_level_; }
  size_t NumNeighbors(size_t node, size_t level) const;

 private:
  HnswIndex(const Dataset& data, const HnswOptions& options)
      : data_(&data), options_(options) {}

  // Greedy single-entry descent used above the beam layer.
  size_t GreedyClosest(std::span<const float> query, size_t entry,
                       size_t level, QueryCounters* counters) const;
  // Best-first beam search on one layer; returns up to ef closest
  // (dist_sq, id), ascending. Checks `cancel` (null = not cancellable) at
  // every candidate pop — the layer-0 beam dominates query time, so this
  // is where a deadline must be able to interrupt.
  Result<std::vector<std::pair<double, size_t>>> SearchLayer(
      std::span<const float> query, size_t entry, size_t level, size_t ef,
      QueryCounters* counters,
      const std::shared_ptr<CancellationToken>& cancel = nullptr) const;
  // The paper-original neighbor selection heuristic.
  std::vector<size_t> SelectNeighbors(
      size_t node, std::vector<std::pair<double, size_t>> candidates,
      size_t m) const;

  std::vector<size_t>& Neighbors(size_t node, size_t level) {
    return links_[node][level];
  }
  const std::vector<size_t>& Neighbors(size_t node, size_t level) const {
    return links_[node][level];
  }

  const Dataset* data_;  // HNSW keeps raw vectors resident (paper §4.2.3)
  HnswOptions options_;
  std::vector<std::vector<std::vector<size_t>>> links_;  // node→level→ids
  std::vector<size_t> levels_;
  size_t entry_point_ = 0;
  size_t max_level_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_HNSW_HNSW_H_
