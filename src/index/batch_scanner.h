#ifndef HYDRA_INDEX_BATCH_SCANNER_H_
#define HYDRA_INDEX_BATCH_SCANNER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/cancellation.h"
#include "common/counters.h"
#include "common/status.h"
#include "distance/simd_dispatch.h"
#include "index/answer_set.h"
#include "storage/buffer_manager.h"

namespace hydra {

// The query-batched counterpart of LeafScanner: evaluates the SAME
// candidate stream for several queries in one pass, so each pinned page
// is fetched once and fed to every query's distance kernel while it is
// cache-hot (DistanceKernels::squared_euclidean_multi). This is the
// amortization axis the per-query scanners cannot reach — their pin,
// prefetch, and thread-fan-out machinery all divide one query's work,
// while a serving batch wants to divide the *data touches* across
// queries.
//
// Equivalence contract (tests/batch_search_test.cc): each registered
// query's AnswerSet ends up exactly as its own solo LeafScanner pass over
// the same candidates would leave it. The multi-query kernel evaluates
// every (query, candidate) pair with the target's single-query
// early-abandon kernel at that query's own threshold, and thresholds are
// refreshed from each query's own answer set at the same chunk
// granularity (kChunk) the per-query scanner uses — the batch shares I/O
// and cache locality, never arithmetic. Candidate order within a scan is
// identical to the serial scanner's, so for a shared full scan the
// per-query state evolves bit for bit as in the solo run; for
// co-traversals that reorder candidates across leaves, exact top-k
// answers still match because completed distances are exact values and a
// true neighbor is never abandoned (its distance can never exceed the
// running k-th bound).
//
// The batched scan is serial across candidates: cross-query amortization
// replaces intra-query sharding, so SearchParams::num_threads does not
// shard it (answers are trivially independent of the thread count, which
// keeps the serving determinism contract intact when the scheduler mixes
// batched and unbatched execution).
//
// Failure isolation: every query is a slot with its own sticky Status,
// its own cancellation token, and its own QueryCounters. A fired
// deadline/cancel token kills only its slot, at the same run/page
// boundaries where LeafScanner checks; the rest of the batch continues.
// A failed FETCH (typed provider status) kills exactly the slots that
// were actively scanning that candidate stream — slots not participating
// in the scan (co-traversal queries whose lower bound pruned this leaf)
// are untouched. Pins: at most one pin is held at any time, released
// before every return, so a failed or expired batch member leaves no
// residue on a shared pool.
//
// Counter attribution: distance counters (full/abandoned) are charged to
// each slot from its own per-pair abandon flags. Shared physical I/O
// (cache hits/misses, bytes, random I/Os, prefetch, retries) is charged
// to the scan's LEADER — the first live slot of the active set at fetch
// time — so every physical event lands on exactly one query and
// per-query sums still equal the pool's atomics (the invariant the
// serving harness reports against).
class BatchLeafScanner {
 public:
  explicit BatchLeafScanner(size_t prefetch_depth = 0)
      : prefetch_depth_(prefetch_depth), kernels_(ActiveKernels()) {}

  // Registers one query; returns its slot index. `answers`/`counters`
  // must outlive the scanner (counters may be null).
  size_t AddQuery(std::span<const float> query, AnswerSet* answers,
                  QueryCounters* counters,
                  std::shared_ptr<CancellationToken> cancel = nullptr);

  size_t num_queries() const { return slots_.size(); }
  bool alive(size_t slot) const { return slots_[slot].status.ok(); }
  const Status& status(size_t slot) const { return slots_[slot].status; }
  QueryCounters* counters(size_t slot) const { return slots_[slot].counters; }
  double KthDistanceSq(size_t slot) const {
    return slots_[slot].answers->KthDistanceSq();
  }
  size_t live_count() const;

  // Marks a slot failed with a typed status (sticky; later scans skip
  // it). Used by callers for per-query conditions the scanner cannot see.
  void Fail(size_t slot, Status status);

  // Cancellation point for co-traversal loops: checks every live slot's
  // token and fails fired slots with their typed status. The scans below
  // run the same check per run/page for their active slots.
  void CheckCancellations();

  // Evaluates every id for the live members of `slots` (slot indices;
  // dead members are skipped). Mirrors LeafScanner::ScanIds: consecutive
  // ids coalesce into pinned runs, lookahead is announced to the
  // provider's prefetcher (charged to the leader), fetch failures fail
  // all participating slots with the provider's typed status.
  void ScanIds(SeriesProvider* provider, std::span<const int64_t> ids,
               std::span<const size_t> slots);

  // Evaluates [first, first + count) for the live members of `slots`,
  // page-run by page-run (the shared-full-scan path).
  void ScanRange(SeriesProvider* provider, uint64_t first, uint64_t count,
                 std::span<const size_t> slots);

  // Evaluates `count` in-memory candidates at block + c * stride with ids
  // first_id, first_id + 1, ... for the given live slots, chunk-wise
  // through the multi-query kernel.
  void ScanContiguous(const float* block, size_t count, size_t stride,
                      int64_t first_id, std::span<const size_t> slots);

  size_t prefetch_depth() const { return prefetch_depth_; }

 private:
  // Same chunk size as LeafScanner: thresholds refresh at identical
  // granularity, bounding staleness exactly as the per-query path does.
  static constexpr size_t kChunk = 64;

  struct Slot {
    std::span<const float> query;
    AnswerSet* answers;
    QueryCounters* counters;  // may be null
    std::shared_ptr<CancellationToken> cancel;
    Status status;  // sticky; non-OK = slot dead
  };

  // The live members of `slots`, after a cancellation check on each.
  // Result lives in active_scratch_.
  std::span<const size_t> ActiveLive(std::span<const size_t> slots);
  void FailAll(std::span<const size_t> slots, const Status& status);

  std::vector<Slot> slots_;
  size_t prefetch_depth_;
  const DistanceKernels& kernels_;

  // Scratch reused across chunks/calls.
  std::vector<size_t> active_scratch_;
  std::vector<const float*> query_ptrs_;
  std::vector<double> thresholds_;
  std::vector<double> out_;
  std::vector<uint8_t> abandoned_;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_BATCH_SCANNER_H_
