#include "index/mtree/mtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/rng.h"
#include "distance/euclidean.h"
#include "index/leaf_scanner.h"

namespace hydra {

double MTreeIndex::Distance(std::span<const float> a, int64_t id,
                            QueryCounters* counters) const {
  std::span<const float> b =
      provider_->GetSeries(static_cast<uint64_t>(id), counters);
  if (counters != nullptr) ++counters->full_distances;
  return Euclidean(a, b);
}

Result<double> MTreeIndex::CheckedDistance(std::span<const float> a,
                                           int64_t id,
                                           QueryCounters* counters) const {
  HYDRA_ASSIGN_OR_RETURN(
      PinnedRun run,
      provider_->PinSeriesChecked(static_cast<uint64_t>(id), counters));
  if (counters != nullptr) ++counters->full_distances;
  return Euclidean(a, run.span());
}

Result<std::unique_ptr<MTreeIndex>> MTreeIndex::Build(
    const Dataset& data, SeriesProvider* provider,
    const MTreeOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (provider == nullptr || provider->num_series() != data.size() ||
      provider->series_length() != data.length()) {
    return Status::InvalidArgument("provider does not match dataset");
  }
  if (options.node_capacity < 2) {
    return Status::InvalidArgument("node_capacity must be >= 2");
  }
  std::unique_ptr<MTreeIndex> index(new MTreeIndex(provider, options));
  index->series_length_ = data.length();
  index->num_series_ = data.size();

  Node root;
  root.is_leaf = true;
  index->nodes_.push_back(root);
  index->root_ = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    index->Insert(static_cast<int64_t>(i), nullptr);
  }

  Rng rng(options.seed);
  index->histogram_ = std::make_unique<DistanceHistogram>(
      data, options.histogram_pairs, options.histogram_bins, rng);
  return index;
}

void MTreeIndex::Insert(int64_t id, QueryCounters* counters) {
  std::span<const float> series =
      provider_->GetSeries(static_cast<uint64_t>(id), counters);

  // Descend to the leaf whose pivot is closest (the classic cheap policy:
  // minimize distance, preferring subtrees that need no radius growth).
  int32_t node_id = root_;
  while (!nodes_[node_id].is_leaf) {
    Node& node = nodes_[node_id];
    int32_t best = 0;
    double best_key = std::numeric_limits<double>::infinity();
    for (size_t e = 0; e < node.entries.size(); ++e) {
      double d = Distance(series, node.entries[e].pivot_id, counters);
      // Entries that already cover the object win; among them the
      // closest pivot; otherwise the one needing the least enlargement.
      double key = d <= node.entries[e].covering_radius
                       ? d
                       : 1e12 + (d - node.entries[e].covering_radius);
      if (key < best_key) {
        best_key = key;
        best = static_cast<int32_t>(e);
      }
    }
    // Grow the covering radius on the way down if needed.
    Entry& chosen = nodes_[node_id].entries[best];
    double d = Distance(series, chosen.pivot_id, counters);
    chosen.covering_radius = std::max(chosen.covering_radius, d);
    node_id = chosen.child;
  }

  Node& leaf = nodes_[node_id];
  Entry entry;
  entry.pivot_id = id;
  if (leaf.parent >= 0) {
    int64_t parent_pivot = nodes_[leaf.parent]
                               .entries[leaf.parent_entry]
                               .pivot_id;
    entry.parent_distance = Distance(series, parent_pivot, counters);
  }
  leaf.entries.push_back(entry);
  if (leaf.entries.size() > options_.node_capacity) {
    SplitNode(node_id, counters);
  }
}

void MTreeIndex::SplitNode(int32_t node_id, QueryCounters* counters) {
  // Promotion: sample pivot pairs, keep the pair minimizing the larger of
  // the two resulting covering radii (the mM_RAD policy).
  std::vector<Entry> entries = std::move(nodes_[node_id].entries);
  nodes_[node_id].entries.clear();
  const size_t n = entries.size();

  // Pairwise distances between member pivots (n <= capacity + 1: cheap).
  std::vector<double> dist(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    auto si = provider_->GetSeries(
        static_cast<uint64_t>(entries[i].pivot_id), counters);
    for (size_t j = i + 1; j < n; ++j) {
      double d = Distance(si, entries[j].pivot_id, counters);
      dist[i * n + j] = dist[j * n + i] = d;
    }
  }

  size_t best_a = 0, best_b = 1;
  double best_score = std::numeric_limits<double>::infinity();
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      // Generalized-hyperplane assignment, score = max covering radius
      // (entry radii included so child subtrees stay covered).
      double ra = 0.0, rb = 0.0;
      for (size_t e = 0; e < n; ++e) {
        double da = dist[e * n + a] + entries[e].covering_radius;
        double db = dist[e * n + b] + entries[e].covering_radius;
        if (dist[e * n + a] <= dist[e * n + b]) {
          ra = std::max(ra, da);
        } else {
          rb = std::max(rb, db);
        }
      }
      double score = std::max(ra, rb);
      if (score < best_score) {
        best_score = score;
        best_a = a;
        best_b = b;
      }
    }
  }

  // Create the sibling; keep `node_id` as the left node.
  bool was_leaf = nodes_[node_id].is_leaf;
  Node right;
  right.is_leaf = was_leaf;
  int32_t right_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(right);

  double radius_a = 0.0, radius_b = 0.0;
  for (size_t e = 0; e < n; ++e) {
    bool to_a = dist[e * n + best_a] <= dist[e * n + best_b];
    Entry moved = entries[e];
    moved.parent_distance = to_a ? dist[e * n + best_a] : dist[e * n + best_b];
    double reach = moved.parent_distance + moved.covering_radius;
    if (to_a) {
      radius_a = std::max(radius_a, reach);
      nodes_[node_id].entries.push_back(moved);
      if (moved.child >= 0) {
        nodes_[moved.child].parent = node_id;
        nodes_[moved.child].parent_entry =
            static_cast<int32_t>(nodes_[node_id].entries.size()) - 1;
      }
    } else {
      radius_b = std::max(radius_b, reach);
      nodes_[right_id].entries.push_back(moved);
      if (moved.child >= 0) {
        nodes_[moved.child].parent = right_id;
        nodes_[moved.child].parent_entry =
            static_cast<int32_t>(nodes_[right_id].entries.size()) - 1;
      }
    }
  }

  Entry entry_a;
  entry_a.pivot_id = entries[best_a].pivot_id;
  entry_a.covering_radius = radius_a;
  entry_a.child = node_id;
  Entry entry_b;
  entry_b.pivot_id = entries[best_b].pivot_id;
  entry_b.covering_radius = radius_b;
  entry_b.child = right_id;

  if (node_id == root_) {
    Node new_root;
    new_root.is_leaf = false;
    int32_t new_root_id = static_cast<int32_t>(nodes_.size());
    new_root.entries = {entry_a, entry_b};
    nodes_.push_back(std::move(new_root));
    nodes_[node_id].parent = new_root_id;
    nodes_[node_id].parent_entry = 0;
    nodes_[right_id].parent = new_root_id;
    nodes_[right_id].parent_entry = 1;
    root_ = new_root_id;
    return;
  }

  // Replace the parent's entry for node_id with entry_a, append entry_b.
  int32_t parent = nodes_[node_id].parent;
  int32_t pe = nodes_[node_id].parent_entry;
  auto pivot_series = provider_->GetSeries(
      static_cast<uint64_t>(entry_a.pivot_id), counters);
  if (nodes_[parent].parent >= 0) {
    int64_t grand_pivot = nodes_[nodes_[parent].parent]
                              .entries[nodes_[parent].parent_entry]
                              .pivot_id;
    entry_a.parent_distance = Distance(pivot_series, grand_pivot, counters);
    auto pivot_b = provider_->GetSeries(
        static_cast<uint64_t>(entry_b.pivot_id), counters);
    entry_b.parent_distance = Distance(pivot_b, grand_pivot, counters);
  }
  nodes_[parent].entries[pe] = entry_a;
  nodes_[parent].entries.push_back(entry_b);
  nodes_[right_id].parent = parent;
  nodes_[right_id].parent_entry =
      static_cast<int32_t>(nodes_[parent].entries.size()) - 1;
  if (nodes_[parent].entries.size() > options_.node_capacity) {
    SplitNode(parent, counters);
  }
}

Result<KnnAnswer> MTreeIndex::Search(std::span<const float> query,
                                     const SearchParams& params,
                                     QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length mismatch");
  }
  const bool ng = params.mode == SearchMode::kNgApproximate;
  const double one_plus_eps =
      params.mode == SearchMode::kDeltaEpsilon ? 1.0 + params.epsilon : 1.0;
  double stop_radius = 0.0;
  if (params.mode == SearchMode::kDeltaEpsilon && params.delta < 1.0) {
    stop_radius = one_plus_eps *
                  histogram_->DeltaRadius(params.delta, num_series_);
  }
  const size_t leaf_budget =
      ng ? std::max<size_t>(params.nprobe, 1)
         : std::numeric_limits<size_t>::max();

  // Best-first over (lower bound, node); leaf entries feed the answers.
  struct QEntry {
    double lb;
    int32_t node;
    bool operator>(const QEntry& o) const { return lb > o.lb; }
  };
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> pq;
  pq.push({0.0, root_});
  if (counters != nullptr) ++counters->nodes_pushed;

  AnswerSet answers(params.k);
  std::shared_ptr<CancellationToken> cancel = ResolveCancellation(params);
  size_t leaves_visited = 0;
  while (!pq.empty() && leaves_visited < leaf_budget) {
    // Cancellation point: once per node pop — the M-tree computes full
    // distances while routing, so this bounds deadline response to one
    // node's worth of pivot evaluations.
    if (cancel != nullptr) {
      HYDRA_RETURN_IF_ERROR(cancel->Check());
    }
    QEntry top = pq.top();
    pq.pop();
    double kth = std::sqrt(answers.KthDistanceSq());
    if (top.lb > kth / one_plus_eps) break;
    const Node& node = nodes_[top.node];
    if (node.is_leaf) {
      ++leaves_visited;
      if (counters != nullptr) ++counters->leaves_visited;
      for (const Entry& e : node.entries) {
        HYDRA_ASSIGN_OR_RETURN(double d,
                               CheckedDistance(query, e.pivot_id, counters));
        answers.Offer(d * d, e.pivot_id);
      }
      if (params.mode == SearchMode::kDeltaEpsilon && answers.full() &&
          std::sqrt(answers.KthDistanceSq()) <= stop_radius) {
        break;
      }
    } else {
      for (const Entry& e : node.entries) {
        HYDRA_ASSIGN_OR_RETURN(double d,
                               CheckedDistance(query, e.pivot_id, counters));
        double lb = std::max(0.0, d - e.covering_radius);
        if (lb <= std::sqrt(answers.KthDistanceSq()) / one_plus_eps) {
          pq.push({lb, e.child});
          if (counters != nullptr) ++counters->nodes_pushed;
        }
      }
    }
  }
  return answers.Finish();
}

size_t MTreeIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const Node& n : nodes_) {
    total += sizeof(Node) + n.entries.size() * sizeof(Entry);
  }
  return total;
}

size_t MTreeIndex::CountRadiusViolations() const {
  // For every routing entry, verify by brute force that all leaf objects
  // beneath it lie within covering_radius of the pivot.
  size_t violations = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf) continue;
    for (const Entry& entry : node.entries) {
      auto pivot = provider_->GetSeries(
          static_cast<uint64_t>(entry.pivot_id), nullptr);
      // Collect leaf ids under entry.child.
      std::vector<int32_t> stack = {entry.child};
      while (!stack.empty()) {
        int32_t id = stack.back();
        stack.pop_back();
        const Node& n = nodes_[id];
        for (const Entry& e : n.entries) {
          if (n.is_leaf) {
            auto obj = provider_->GetSeries(
                static_cast<uint64_t>(e.pivot_id), nullptr);
            if (Euclidean(pivot, obj) > entry.covering_radius + 1e-6) {
              ++violations;
            }
          } else {
            stack.push_back(e.child);
          }
        }
      }
    }
  }
  return violations;
}

}  // namespace hydra
