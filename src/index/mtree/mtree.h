#ifndef HYDRA_INDEX_MTREE_MTREE_H_
#define HYDRA_INDEX_MTREE_MTREE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/distance_histogram.h"
#include "index/answer_set.h"
#include "index/index.h"
#include "storage/buffer_manager.h"

namespace hydra {

// M-tree (Ciaccia, Patella & Zezula 1997) with PAC nearest-neighbor
// search (Ciaccia & Patella 2000) — the metric access method whose
// δ-ε-approximate machinery the paper ports onto the data-series indexes
// (its Algorithm 2 cites exactly this line of work; the taxonomy lists
// the M-tree in both the exact and δ-ε leaves).
//
// Structure: a balanced tree of routing objects. Each routing entry
// stores a pivot series, a covering radius bounding the distance from the
// pivot to anything in its subtree, and the distance to its parent pivot.
// Pruning uses the triangle inequality:
//   d(query, subtree) >= d(query, pivot) − covering_radius.
// Unlike the summarization-based indexes, the M-tree works for any metric
// but must store/fetch pivot series and computes full distances while
// routing — the cost profile that makes it uncompetitive in the paper's
// setting, reproduced here as a baseline.
struct MTreeOptions {
  size_t node_capacity = 16;  // max entries per node
  size_t histogram_pairs = 20000;
  size_t histogram_bins = 512;
  uint64_t seed = 42;
};

class MTreeIndex : public Index {
 public:
  static Result<std::unique_ptr<MTreeIndex>> Build(
      const Dataset& data, SeriesProvider* provider,
      const MTreeOptions& options = {});

  std::string name() const override { return "mtree"; }
  IndexCapabilities capabilities() const override {
    IndexCapabilities c;
    c.exact = true;
    c.ng_approximate = true;
    c.epsilon_approximate = true;
    c.delta_epsilon_approximate = true;
    c.disk_resident = true;
    c.summarization = "metric pivots";
    return c;
  }
  size_t MemoryBytes() const override;

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

  // Structural invariants exposed for tests.
  size_t num_nodes() const { return nodes_.size(); }
  // Verifies covering radii bound all subtree members; returns the number
  // of violations (0 when the tree is sound). O(n · depth).
  size_t CountRadiusViolations() const;

 private:
  struct Entry {
    int64_t pivot_id = -1;        // series acting as routing/leaf object
    double covering_radius = 0.0; // 0 for leaf entries
    double parent_distance = 0.0; // d(pivot, parent pivot)
    int32_t child = -1;           // subtree node; -1 for leaf entries
  };
  struct Node {
    bool is_leaf = true;
    int32_t parent = -1;
    int32_t parent_entry = -1;  // index in parent's entries
    std::vector<Entry> entries;
  };

  MTreeIndex(SeriesProvider* provider, const MTreeOptions& options)
      : provider_(provider), options_(options) {}

  double Distance(std::span<const float> a, int64_t id,
                  QueryCounters* counters) const;
  // Search-path variant of Distance: pins the pivot series through the
  // checked provider API and surfaces its typed Status (DataCorruption,
  // IoError, Unavailable) instead of evaluating a failed fetch's empty
  // span — which would feed NaN distances into the answer set and return
  // a silently wrong result.
  Result<double> CheckedDistance(std::span<const float> a, int64_t id,
                                 QueryCounters* counters) const;
  void Insert(int64_t id, QueryCounters* counters);
  // Splits an overfull node, promoting two pivots (mM_RAD split policy:
  // the pair minimizing the larger covering radius among sampled pairs).
  void SplitNode(int32_t node_id, QueryCounters* counters);
  void UpdateCoveringRadii(int32_t node_id, int64_t inserted_id,
                           QueryCounters* counters);

  SeriesProvider* provider_;  // not owned
  MTreeOptions options_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  std::unique_ptr<DistanceHistogram> histogram_;
  size_t series_length_ = 0;
  size_t num_series_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_MTREE_MTREE_H_
