#ifndef HYDRA_INDEX_ADSPLUS_ADSPLUS_H_
#define HYDRA_INDEX_ADSPLUS_ADSPLUS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/distance_histogram.h"
#include "index/answer_set.h"
#include "index/index.h"
#include "index/isax/isax_node.h"
#include "storage/buffer_manager.h"
#include "transform/sax.h"

namespace hydra {

class ParallelLeafScanner;  // exec/parallel_scanner.h

// ADS+ (Zoumpatianos, Idreos & Palpanas 2016): the adaptive data series
// index. Index construction is deliberately minimal — one summarization
// pass builds a coarse iSAX tree with large, unrefined leaves — and the
// expensive work of refining the tree is deferred to query time: each
// query adaptively splits the leaves it actually touches down to a small
// query-time leaf size. Regions never queried never pay refinement cost.
//
// The paper evaluates iSAX2+ instead of ADS+ because ADS+'s SIMS answer
// strategy was "not immediately amenable to approximate search with
// guarantees" and marks the δ-ε extension of ADS+ as planned work (its
// taxonomy already lists ADS+ [•]). This class implements that planned
// extension: the adaptive build/refine split of ADS+, combined with the
// same Algorithm 1/2 search modes as the other trees.
//
// Queries mutate the tree (refinement), so a single index must not serve
// concurrent queries — matching the original single-threaded design.
struct AdsPlusOptions {
  size_t segments = 16;
  size_t max_bits = 8;
  size_t build_leaf_capacity = 1024;  // coarse leaves at build time
  size_t query_leaf_capacity = 64;    // adaptive refinement target
  size_t histogram_pairs = 20000;
  size_t histogram_bins = 512;
  uint64_t histogram_seed = 42;
};

class AdsPlusIndex : public Index {
 public:
  static Result<std::unique_ptr<AdsPlusIndex>> Build(
      const Dataset& data, SeriesProvider* provider,
      const AdsPlusOptions& options = {});

  std::string name() const override { return "adsplus"; }
  IndexCapabilities capabilities() const override {
    IndexCapabilities c;
    c.exact = true;
    c.ng_approximate = true;
    c.epsilon_approximate = true;
    c.delta_epsilon_approximate = true;
    c.disk_resident = true;
    // Queries refine the tree in place (see class comment): one instance
    // must not serve overlapping queries. The serving engine reads this
    // flag and admits ADS+ queries one at a time.
    c.concurrent_queries = false;
    c.summarization = "iSAX (adaptive)";
    return c;
  }
  size_t MemoryBytes() const override;

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

  // --- TreeKnnSearch interface ---
  struct QueryContext {
    std::vector<double> paa;
  };
  std::vector<int32_t> SearchRoots() const { return root_children_; }
  bool IsLeaf(int32_t id) const { return nodes_[id].is_leaf; }
  std::vector<int32_t> NodeChildren(int32_t id) const;
  double MinDistSq(const QueryContext& ctx, int32_t id) const;
  // Adaptive: refines the leaf to query_leaf_capacity before scanning.
  Status ScanLeaf(int32_t id, ParallelLeafScanner* scanner) const;
  // Readahead hint for a queued leaf (tree_search.h): announces up to
  // max_pages pages of the leaf's (sorted) id runs to the provider's
  // prefetcher. Returns pages announced.
  size_t PrefetchLeaf(int32_t id, ParallelLeafScanner* scanner,
                      size_t max_pages) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;
  // How many leaves exceed the query-time capacity (shrinks as queries
  // refine the tree — the adaptivity observable).
  size_t num_unrefined_leaves() const;

 private:
  AdsPlusIndex(SeriesProvider* provider, const AdsPlusOptions& options)
      : provider_(provider), options_(options) {}

  void Insert(int64_t id, const std::vector<uint16_t>& word);
  // Splits `node_id` once (same promotion policy as iSAX2+); returns
  // false when the node is unsplittable.
  bool SplitLeaf(int32_t node_id) const;
  // Splits the leaf repeatedly until the subtree it rooted is refined to
  // the query-time capacity; the query then re-descends.
  void RefineSubtree(int32_t node_id, QueryCounters* counters) const;
  uint64_t RootKey(const std::vector<uint16_t>& word) const;
  static int NextBit(uint16_t symbol, uint8_t used_bits, size_t max_bits) {
    return (symbol >> (max_bits - used_bits - 1)) & 1;
  }

  SeriesProvider* provider_;  // not owned
  AdsPlusOptions options_;
  std::unique_ptr<SaxEncoder> encoder_;
  // Query-time refinement mutates the structure: mutable by design (see
  // class comment on concurrency).
  mutable std::vector<IsaxNode> nodes_;
  std::unordered_map<uint64_t, int32_t> root_map_;
  std::vector<int32_t> root_children_;
  std::unique_ptr<DistanceHistogram> histogram_;
  size_t series_length_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_ADSPLUS_ADSPLUS_H_
