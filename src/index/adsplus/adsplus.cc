#include "index/adsplus/adsplus.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "index/leaf_scanner.h"
#include "index/tree_search.h"

namespace hydra {

Result<std::unique_ptr<AdsPlusIndex>> AdsPlusIndex::Build(
    const Dataset& data, SeriesProvider* provider,
    const AdsPlusOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (provider == nullptr || provider->num_series() != data.size() ||
      provider->series_length() != data.length()) {
    return Status::InvalidArgument("provider does not match dataset");
  }
  if (options.segments == 0 || options.segments > 64) {
    return Status::InvalidArgument("segments must be in [1, 64]");
  }
  if (options.build_leaf_capacity == 0 || options.query_leaf_capacity == 0) {
    return Status::InvalidArgument("leaf capacities must be > 0");
  }
  std::unique_ptr<AdsPlusIndex> index(new AdsPlusIndex(provider, options));
  index->series_length_ = data.length();
  index->encoder_ = std::make_unique<SaxEncoder>(
      data.length(), options.segments, options.max_bits);

  // Minimal build pass: summaries only, into coarse leaves.
  for (size_t i = 0; i < data.size(); ++i) {
    index->Insert(static_cast<int64_t>(i),
                  index->encoder_->Encode(data.series(i)));
  }
  // Sorted leaf ids coalesce into contiguous runs (batch kernel +
  // sequential readahead, index/leaf_scanner.h). Query-time refinement
  // splits partition in order, so descendants of a sorted leaf stay
  // sorted across the index's whole adaptive life.
  for (IsaxNode& node : index->nodes_) {
    node.SortLeafByIds(options.segments);
  }

  Rng rng(options.histogram_seed);
  index->histogram_ = std::make_unique<DistanceHistogram>(
      data, options.histogram_pairs, options.histogram_bins, rng);
  return index;
}

uint64_t AdsPlusIndex::RootKey(const std::vector<uint16_t>& word) const {
  uint64_t key = 0;
  for (size_t s = 0; s < word.size(); ++s) {
    key = (key << 1) |
          static_cast<uint64_t>((word[s] >> (options_.max_bits - 1)) & 1);
  }
  return key;
}

void AdsPlusIndex::Insert(int64_t id, const std::vector<uint16_t>& word) {
  uint64_t key = RootKey(word);
  auto it = root_map_.find(key);
  int32_t node_id;
  if (it == root_map_.end()) {
    IsaxNode node;
    node.word = word;
    node.bits.assign(options_.segments, 1);
    node_id = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(std::move(node));
    root_map_[key] = node_id;
    root_children_.push_back(node_id);
  } else {
    node_id = it->second;
  }

  while (true) {
    IsaxNode& node = nodes_[node_id];
    ++node.count;
    if (node.is_leaf) break;
    int bit = NextBit(word[node.split_segment], node.bits[node.split_segment],
                      options_.max_bits);
    node_id = bit == 0 ? node.left : node.right;
  }
  IsaxNode& leaf = nodes_[node_id];
  leaf.series_ids.push_back(id);
  leaf.leaf_words.insert(leaf.leaf_words.end(), word.begin(), word.end());
  // Build-time splits use the *coarse* capacity: the tree stays shallow
  // and construction cheap; queries refine later where it matters.
  if (leaf.series_ids.size() > options_.build_leaf_capacity) {
    SplitLeaf(node_id);
  }
}

bool AdsPlusIndex::SplitLeaf(int32_t node_id) const {
  const size_t segs = options_.segments;
  const size_t n = nodes_[node_id].series_ids.size();
  if (n < 2) return false;

  size_t best_seg = segs;
  double best_balance = -1.0;
  {
    const IsaxNode& leaf = nodes_[node_id];
    for (size_t s = 0; s < segs; ++s) {
      if (leaf.bits[s] >= options_.max_bits) continue;
      size_t ones = 0;
      for (size_t i = 0; i < n; ++i) {
        ones += NextBit(leaf.leaf_words[i * segs + s], leaf.bits[s],
                        options_.max_bits);
      }
      if (ones == 0 || ones == n) continue;
      double frac = static_cast<double>(ones) / static_cast<double>(n);
      double balance = 1.0 - std::abs(frac - 0.5) * 2.0;
      if (balance > best_balance) {
        best_balance = balance;
        best_seg = s;
      }
    }
  }
  if (best_seg == segs) return false;

  IsaxNode left, right;
  {
    const IsaxNode& leaf = nodes_[node_id];
    left.word = leaf.word;
    left.bits = leaf.bits;
    left.bits[best_seg] += 1;
    right.word = leaf.word;
    right.bits = left.bits;
    const uint16_t bitmask = static_cast<uint16_t>(
        1 << (options_.max_bits - left.bits[best_seg]));
    left.word[best_seg] &= static_cast<uint16_t>(~bitmask);
    right.word[best_seg] |= bitmask;

    for (size_t i = 0; i < n; ++i) {
      int bit = NextBit(leaf.leaf_words[i * segs + best_seg],
                        leaf.bits[best_seg], options_.max_bits);
      IsaxNode& child = bit == 0 ? left : right;
      child.series_ids.push_back(leaf.series_ids[i]);
      child.leaf_words.insert(child.leaf_words.end(),
                              leaf.leaf_words.begin() + i * segs,
                              leaf.leaf_words.begin() + (i + 1) * segs);
      ++child.count;
    }
  }
  int32_t left_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(std::move(left));
  int32_t right_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(std::move(right));

  IsaxNode& parent = nodes_[node_id];
  parent.is_leaf = false;
  parent.split_segment = static_cast<uint8_t>(best_seg);
  parent.left = left_id;
  parent.right = right_id;
  parent.series_ids.clear();
  parent.series_ids.shrink_to_fit();
  parent.leaf_words.clear();
  parent.leaf_words.shrink_to_fit();
  return true;
}

void AdsPlusIndex::RefineSubtree(int32_t node_id,
                                 QueryCounters* counters) const {
  // Split the touched leaf (and any oversized descendants) down to the
  // query-time capacity. This is the "adaptive" in ADS+: the cost is
  // paid once, only for regions queries care about.
  std::vector<int32_t> stack = {node_id};
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    if (nodes_[id].is_leaf) {
      if (nodes_[id].series_ids.size() > options_.query_leaf_capacity) {
        if (SplitLeaf(id)) {
          stack.push_back(nodes_[id].left);
          stack.push_back(nodes_[id].right);
          if (counters != nullptr) ++counters->nodes_pushed;
        }
      }
    } else {
      stack.push_back(nodes_[id].left);
      stack.push_back(nodes_[id].right);
    }
  }
}

std::vector<int32_t> AdsPlusIndex::NodeChildren(int32_t id) const {
  const IsaxNode& n = nodes_[id];
  std::vector<int32_t> out;
  if (n.left >= 0) out.push_back(n.left);
  if (n.right >= 0) out.push_back(n.right);
  return out;
}

double AdsPlusIndex::MinDistSq(const QueryContext& ctx, int32_t id) const {
  const IsaxNode& n = nodes_[id];
  return encoder_->MinDistSqPaaToSax(ctx.paa, n.word, n.bits);
}

Status AdsPlusIndex::ScanLeaf(int32_t id,
                              ParallelLeafScanner* scanner) const {
  if (nodes_[id].series_ids.size() > options_.query_leaf_capacity) {
    RefineSubtree(id, scanner->counters());
  }
  // After refinement the node may be internal: scan the (refined) leaves
  // beneath it, nearest-first is unnecessary — the caller already ordered
  // this subtree by its lower bound. Refinement itself stays on the query
  // thread; only the id scans below fan out.
  std::vector<int32_t> stack = {id};
  while (!stack.empty()) {
    int32_t cur = stack.back();
    stack.pop_back();
    const IsaxNode& node = nodes_[cur];
    if (!node.is_leaf) {
      stack.push_back(node.left);
      stack.push_back(node.right);
      continue;
    }
    HYDRA_RETURN_IF_ERROR(scanner->ScanIds(provider_, node.series_ids)
                              .status());
  }
  return Status::OK();
}

size_t AdsPlusIndex::PrefetchLeaf(int32_t id, ParallelLeafScanner* scanner,
                                  size_t max_pages) const {
  // An unrefined leaf keeps the same ids after refinement splits them
  // across descendants, so announcing them before the ScanLeaf-triggered
  // refinement is exactly the readahead the post-refinement scans want.
  return scanner->PrefetchIds(provider_, nodes_[id].series_ids, max_pages);
}

Result<KnnAnswer> AdsPlusIndex::Search(std::span<const float> query,
                                       const SearchParams& params,
                                       QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length mismatch");
  }
  QueryContext ctx;
  ctx.paa = encoder_->paa().Transform(query);
  double r_delta = 0.0;
  if (params.mode == SearchMode::kDeltaEpsilon && params.delta < 1.0) {
    r_delta = histogram_->DeltaRadius(params.delta, provider_->num_series());
  }
  return TreeKnnSearch(*this, ctx, query, params, r_delta, counters);
}

size_t AdsPlusIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const IsaxNode& n : nodes_) total += n.ApproxBytes();
  total += root_map_.size() * (sizeof(uint64_t) + sizeof(int32_t)) * 2;
  return total;
}

size_t AdsPlusIndex::num_leaves() const {
  size_t leaves = 0;
  for (const IsaxNode& n : nodes_) leaves += n.is_leaf ? 1 : 0;
  return leaves;
}

size_t AdsPlusIndex::num_unrefined_leaves() const {
  size_t count = 0;
  for (const IsaxNode& n : nodes_) {
    if (n.is_leaf && n.series_ids.size() > options_.query_leaf_capacity) {
      ++count;
    }
  }
  return count;
}

}  // namespace hydra
