#include "index/factory.h"

#include <utility>

#include "index/adsplus/adsplus.h"
#include "index/dstree/dstree.h"
#include "index/flann/flann.h"
#include "index/hnsw/hnsw.h"
#include "index/imi/imi.h"
#include "index/isax/isax_index.h"
#include "index/mtree/mtree.h"
#include "index/qalsh/qalsh.h"
#include "index/scan/linear_scan.h"
#include "index/sfa/sfa.h"
#include "index/srs/srs.h"
#include "index/vafile/vafile.h"
#include "storage/buffer_manager.h"
#include "storage/series_file.h"

namespace hydra {
namespace {

// Apply-if-set: BuildOptions uses 0 for "keep the method default".
template <typename T>
void SetIfNonZero(T* field, size_t value) {
  if (value != 0) *field = static_cast<T>(value);
}

// Owns the full serving stack Index::Open assembles — storage (buffer
// pool or in-memory copy), raw data, and the index over them — and
// forwards the Index interface to the inner method. The one object a
// caller keeps alive instead of three.
class OwningIndex final : public Index {
 public:
  OwningIndex(std::unique_ptr<Dataset> data,
              std::unique_ptr<BufferManager> pool,
              std::unique_ptr<InMemoryProvider> memory,
              std::unique_ptr<Index> index)
      : data_(std::move(data)),
        pool_(std::move(pool)),
        memory_(std::move(memory)),
        index_(std::move(index)) {}

  std::string name() const override { return index_->name(); }
  IndexCapabilities capabilities() const override {
    return index_->capabilities();
  }
  size_t MemoryBytes() const override { return index_->MemoryBytes(); }
  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override {
    return index_->Search(query, params, counters);
  }
  std::vector<Result<KnnAnswer>> BatchSearch(
      std::span<const BatchQuery> batch) const override {
    return index_->BatchSearch(batch);
  }

  // The provider the index serves from (the session needs it for pin
  // budget negotiation); may be the pool or the in-memory copy.
  SeriesProvider* provider() const {
    return pool_ != nullptr ? static_cast<SeriesProvider*>(pool_.get())
                            : static_cast<SeriesProvider*>(memory_.get());
  }

 private:
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<BufferManager> pool_;
  std::unique_ptr<InMemoryProvider> memory_;
  std::unique_ptr<Index> index_;
};

}  // namespace

const std::vector<std::string>& KnownMethods() {
  static const std::vector<std::string> kMethods = {
      "scan",   "dstree", "isax", "adsplus", "vafile", "sfa",
      "mtree",  "srs",    "qalsh", "hnsw",   "imi",    "flann"};
  return kMethods;
}

Result<std::unique_ptr<Index>> BuildIndex(const Dataset& data,
                                          SeriesProvider* provider,
                                          const BuildOptions& options) {
  const std::string& m = options.method;
  if (m == "scan") {
    if (provider == nullptr) {
      return Status::InvalidArgument("scan requires a provider");
    }
    return std::unique_ptr<Index>(
        std::make_unique<LinearScanIndex>(provider));
  }
  if (m == "dstree") {
    DSTreeOptions o;
    SetIfNonZero(&o.leaf_capacity, options.leaf_capacity);
    SetIfNonZero(&o.histogram_pairs, options.histogram_pairs);
    HYDRA_ASSIGN_OR_RETURN(auto idx, DSTreeIndex::Build(data, provider, o));
    return std::unique_ptr<Index>(std::move(idx));
  }
  if (m == "isax") {
    IsaxOptions o;
    SetIfNonZero(&o.segments, options.segments);
    SetIfNonZero(&o.leaf_capacity, options.leaf_capacity);
    SetIfNonZero(&o.histogram_pairs, options.histogram_pairs);
    HYDRA_ASSIGN_OR_RETURN(auto idx, IsaxIndex::Build(data, provider, o));
    return std::unique_ptr<Index>(std::move(idx));
  }
  if (m == "adsplus") {
    AdsPlusOptions o;
    SetIfNonZero(&o.segments, options.segments);
    SetIfNonZero(&o.query_leaf_capacity, options.leaf_capacity);
    SetIfNonZero(&o.histogram_pairs, options.histogram_pairs);
    HYDRA_ASSIGN_OR_RETURN(auto idx, AdsPlusIndex::Build(data, provider, o));
    return std::unique_ptr<Index>(std::move(idx));
  }
  if (m == "vafile") {
    VaFileOptions o;
    SetIfNonZero(&o.num_features, options.num_features);
    SetIfNonZero(&o.histogram_pairs, options.histogram_pairs);
    HYDRA_ASSIGN_OR_RETURN(auto idx, VaFileIndex::Build(data, provider, o));
    return std::unique_ptr<Index>(std::move(idx));
  }
  if (m == "sfa") {
    SfaOptions o;
    SetIfNonZero(&o.num_features, options.num_features);
    SetIfNonZero(&o.leaf_capacity, options.leaf_capacity);
    SetIfNonZero(&o.histogram_pairs, options.histogram_pairs);
    HYDRA_ASSIGN_OR_RETURN(auto idx, SfaIndex::Build(data, provider, o));
    return std::unique_ptr<Index>(std::move(idx));
  }
  if (m == "mtree") {
    MTreeOptions o;
    SetIfNonZero(&o.node_capacity, options.leaf_capacity);
    SetIfNonZero(&o.histogram_pairs, options.histogram_pairs);
    HYDRA_ASSIGN_OR_RETURN(auto idx, MTreeIndex::Build(data, provider, o));
    return std::unique_ptr<Index>(std::move(idx));
  }
  if (m == "srs") {
    SrsOptions o;
    SetIfNonZero(&o.projections, options.srs_projections);
    HYDRA_ASSIGN_OR_RETURN(auto idx, SrsIndex::Build(data, provider, o));
    return std::unique_ptr<Index>(std::move(idx));
  }
  if (m == "qalsh") {
    QalshOptions o;
    SetIfNonZero(&o.num_hashes, options.qalsh_hashes);
    HYDRA_ASSIGN_OR_RETURN(auto idx, QalshIndex::Build(data, provider, o));
    return std::unique_ptr<Index>(std::move(idx));
  }
  if (m == "hnsw") {
    HnswOptions o;
    SetIfNonZero(&o.M, options.hnsw_m);
    SetIfNonZero(&o.ef_construction, options.hnsw_ef_construction);
    HYDRA_ASSIGN_OR_RETURN(auto idx, HnswIndex::Build(data, o));
    return std::unique_ptr<Index>(std::move(idx));
  }
  if (m == "imi") {
    ImiOptions o;
    SetIfNonZero(&o.coarse_k, options.imi_coarse_k);
    HYDRA_ASSIGN_OR_RETURN(auto idx, ImiIndex::Build(data, o));
    return std::unique_ptr<Index>(std::move(idx));
  }
  if (m == "flann") {
    HYDRA_ASSIGN_OR_RETURN(auto idx, FlannIndex::Build(data, FlannOptions{}));
    return std::unique_ptr<Index>(std::move(idx));
  }
  return Status::InvalidArgument("unknown method: " + m);
}

Result<std::unique_ptr<Index>> Index::Open(const std::string& path,
                                           const BuildOptions& options) {
  // Always materialize the dataset once: tree construction needs the raw
  // series regardless of where queries will read them from.
  HYDRA_ASSIGN_OR_RETURN(auto reader, SeriesFileReader::Open(path));
  HYDRA_ASSIGN_OR_RETURN(Dataset read, reader->ReadAll(nullptr));
  auto data = std::make_unique<Dataset>(std::move(read));
  reader.reset();  // the serving provider opens its own descriptor

  std::unique_ptr<BufferManager> pool;
  std::unique_ptr<InMemoryProvider> memory;
  SeriesProvider* provider = nullptr;
  if (options.page_series != 0 || options.capacity_pages != 0) {
    // Disk-resident serving through a page-pinning pool sized by the
    // caller (both knobs default to a small sane shape if only one is
    // given).
    const uint64_t page_series =
        options.page_series != 0 ? options.page_series : 64;
    const uint64_t capacity =
        options.capacity_pages != 0 ? options.capacity_pages : 128;
    HYDRA_ASSIGN_OR_RETURN(pool,
                           BufferManager::Open(path, page_series, capacity));
    provider = pool.get();
  } else {
    memory = std::make_unique<InMemoryProvider>(data.get());
    provider = memory.get();
  }
  HYDRA_ASSIGN_OR_RETURN(auto index, BuildIndex(*data, provider, options));
  return std::unique_ptr<Index>(
      std::make_unique<OwningIndex>(std::move(data), std::move(pool),
                                    std::move(memory), std::move(index)));
}

}  // namespace hydra
