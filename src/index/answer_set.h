#ifndef HYDRA_INDEX_ANSWER_SET_H_
#define HYDRA_INDEX_ANSWER_SET_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "core/metrics.h"

namespace hydra {

// Bounded max-heap of the best k (squared distance, id) candidates; the
// running result set of every k-NN algorithm here. kth() is the pruning
// threshold (+inf until the heap fills).
class AnswerSet {
 public:
  explicit AnswerSet(size_t k) : k_(k) {}

  // Offers a candidate; returns true if it entered the answer set.
  bool Offer(double dist_sq, int64_t id);

  // Squared distance of the current k-th answer (prune threshold).
  double KthDistanceSq() const;

  bool full() const { return heap_.size() == k_; }
  size_t size() const { return heap_.size(); }
  size_t k() const { return k_; }

  // Extracts the final answer, ids ascending by distance, distances in
  // true (square-rooted) space. Destroys the heap.
  KnnAnswer Finish();

  // Removes and returns every (squared distance, id) entry in unspecified
  // order, leaving the set empty. The parallel merge path
  // (exec/parallel_scanner.h) drains per-worker sets with this.
  std::vector<std::pair<double, int64_t>> TakeEntries();

 private:
  size_t k_;
  std::priority_queue<std::pair<double, int64_t>> heap_;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_ANSWER_SET_H_
