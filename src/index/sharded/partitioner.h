#ifndef HYDRA_INDEX_SHARDED_PARTITIONER_H_
#define HYDRA_INDEX_SHARDED_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dataset.h"

namespace hydra {

// How a collection of N series is split across S shards. Both schemes are
// pure id arithmetic — no data-dependent placement — so the mapping needs
// no lookup table, shard files can be rebuilt from the original ids
// alone, and the global<->local translation is exact in both directions.
enum class PartitionScheme {
  // Shard of id g is g % S; balanced to within one series for any input
  // order. The LSST-style default: consecutive ids (which arrive
  // together) land on different shards, so a range-local query load
  // spreads across the fleet.
  kRoundRobin,
  // Contiguous ranges: shard i holds [i*N/S, (i+1)*N/S). Preserves the
  // on-disk locality of the original file — the partitioning a bulk
  // loader that splits an existing file byte-wise would produce.
  kRange,
};

// The id algebra of one (scheme, N, S) partitioning. Local ids are dense
// [0, ShardSize(s)) per shard — exactly what a per-shard index and a
// per-shard series file expect — and GlobalId(ShardOf(g), LocalId(g))
// == g for every g < N.
class ShardPartitioning {
 public:
  ShardPartitioning(PartitionScheme scheme, size_t num_series,
                    size_t num_shards)
      : scheme_(scheme),
        num_series_(num_series),
        num_shards_(num_shards == 0 ? 1 : num_shards) {}

  PartitionScheme scheme() const { return scheme_; }
  size_t num_series() const { return num_series_; }
  size_t num_shards() const { return num_shards_; }

  size_t ShardOf(int64_t global_id) const {
    const size_t g = static_cast<size_t>(global_id);
    if (scheme_ == PartitionScheme::kRoundRobin) return g % num_shards_;
    // Range: the unique i with RangeStart(i) <= g < RangeStart(i+1).
    // Guess-and-correct around g*S/N handles the uneven tail splits.
    size_t i = num_series_ == 0 ? 0 : (g * num_shards_) / num_series_;
    if (i >= num_shards_) i = num_shards_ - 1;
    while (i > 0 && g < RangeStart(i)) --i;
    while (i + 1 < num_shards_ && g >= RangeStart(i + 1)) ++i;
    return i;
  }

  int64_t LocalId(int64_t global_id) const {
    const size_t g = static_cast<size_t>(global_id);
    if (scheme_ == PartitionScheme::kRoundRobin) {
      return static_cast<int64_t>(g / num_shards_);
    }
    return static_cast<int64_t>(g - RangeStart(ShardOf(global_id)));
  }

  int64_t GlobalId(size_t shard, int64_t local_id) const {
    const size_t l = static_cast<size_t>(local_id);
    if (scheme_ == PartitionScheme::kRoundRobin) {
      return static_cast<int64_t>(l * num_shards_ + shard);
    }
    return static_cast<int64_t>(RangeStart(shard) + l);
  }

  size_t ShardSize(size_t shard) const {
    if (scheme_ == PartitionScheme::kRoundRobin) {
      const size_t base = num_series_ / num_shards_;
      return base + (shard < num_series_ % num_shards_ ? 1 : 0);
    }
    return RangeStart(shard + 1) - RangeStart(shard);
  }

 private:
  // Balanced range split: start of shard i at i*N/S (computed in exact
  // integer arithmetic, monotone in i, RangeStart(S) == N).
  size_t RangeStart(size_t shard) const {
    return (shard * num_series_) / num_shards_;
  }

  PartitionScheme scheme_;
  size_t num_series_;
  size_t num_shards_;
};

// Materializes the per-shard datasets: shard s holds the series with
// ShardOf(g) == s, ordered by local id (so shard_data[s].series(l) IS
// global series GlobalId(s, l), bit for bit — partitioning copies raw
// values and never re-normalizes).
inline std::vector<Dataset> PartitionDataset(const Dataset& data,
                                             const ShardPartitioning& parts) {
  std::vector<Dataset> shards;
  shards.reserve(parts.num_shards());
  for (size_t s = 0; s < parts.num_shards(); ++s) {
    shards.emplace_back(0, data.length());
  }
  for (size_t g = 0; g < data.size(); ++g) {
    // Cannot fail: every shard was constructed with the right length.
    (void)shards[parts.ShardOf(static_cast<int64_t>(g))].Append(
        data.series(g));
  }
  return shards;
}

}  // namespace hydra

#endif  // HYDRA_INDEX_SHARDED_PARTITIONER_H_
