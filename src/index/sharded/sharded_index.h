#ifndef HYDRA_INDEX_SHARDED_SHARDED_INDEX_H_
#define HYDRA_INDEX_SHARDED_SHARDED_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "index/factory.h"
#include "index/index.h"
#include "index/sharded/partitioner.h"
#include "storage/buffer_manager.h"

namespace hydra {

// Topology of one sharded deployment: how many shards, how ids map onto
// them, what method each shard runs and where shard data lives.
struct ShardedIndexOptions {
  size_t num_shards = 1;
  PartitionScheme scheme = PartitionScheme::kRoundRobin;
  // Per-shard construction: method + knobs, built through the factory —
  // the sharded layer never special-cases a method. The storage knobs
  // (page_series/capacity_pages) size EACH shard's buffer pool when
  // storage_dir is set.
  BuildOptions build;
  // Non-empty = disk-resident shards: shard s's series are written to
  // `<storage_dir>/shard-<s>.hsf` and served through the shard's own
  // page-pinning pool (per-shard pools, so one shard's pin pressure or
  // faults never bleed into another's). Empty = every shard serves from
  // its in-memory partition.
  std::string storage_dir;
};

// Scatter-gather over S per-shard indexes: the dataset is partitioned by
// pure id arithmetic (partitioner.h), each shard builds its own index of
// the chosen method over its own storage, and one Search() fans out
// across the shards on the shared ThreadPool (TaskGroup, helping Wait —
// the same seams intra-query scans use), then merges the per-shard
// AnswerSets into one exact global k-NN.
//
// Determinism contract (the serving suites extend to every shard count):
// each shard computes the same full distance for a given (query, series)
// pair as the unsharded index would — partitioning copies raw series bits
// and early abandonment never alters a surviving candidate's sum — so the
// merged top-k carries bit-identical distances, merged in true-distance
// space ordered by (distance, global id). As everywhere in this repo,
// answers are unique up to id choice on exact distance ties at the k-th
// boundary; shard counts can only shift WHICH tied id is kept, never a
// distance value.
//
// Failure semantics: shards fail independently (per-shard pools and
// files). A failed shard degrades the query to its typed Status — never
// a silently partial answer — and, when the query's cancellation token
// is owned by this call, the first failure cancels the sibling shard
// tasks so a dead shard does not burn the fleet's time. Per-query
// deadlines/cancel tokens are resolved ONCE and shared by every shard
// task, so one budget governs the whole scatter.
class ShardedIndex : public Index {
 public:
  static Result<std::unique_ptr<ShardedIndex>> Build(
      const Dataset& data, const ShardedIndexOptions& options);

  std::string name() const override;
  IndexCapabilities capabilities() const override;
  size_t MemoryBytes() const override;

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

  // Scatter-gather for a whole batch: every shard evaluates the full
  // batch through its own BatchSearch (shared scans amortize inside each
  // shard), then each member's per-shard answers merge independently. A
  // member fails alone with its own typed Status; per-member counters
  // sum across shards in shard order.
  std::vector<Result<KnnAnswer>> BatchSearch(
      std::span<const BatchQuery> batch) const override;

  const ShardPartitioning& partitioning() const { return parts_; }
  size_t num_shards() const { return shards_.size(); }
  // The shard's buffer pool (nullptr for in-memory or empty shards) —
  // the seam fault-injection tests arm one shard's faults through.
  BufferManager* shard_pool(size_t shard) const {
    return shards_[shard].pool.get();
  }
  // The shard's index (nullptr for an empty shard).
  const Index* shard_index(size_t shard) const {
    return shards_[shard].index.get();
  }

 private:
  struct Shard {
    // The shard's partition, local-id order (kept alive: methods may
    // reference it past build, and the in-memory provider serves it).
    std::unique_ptr<Dataset> data;
    std::unique_ptr<BufferManager> pool;        // disk shards
    std::unique_ptr<InMemoryProvider> memory;   // in-memory shards
    std::unique_ptr<Index> index;               // null when the shard is empty
  };

  ShardedIndex(ShardedIndexOptions options, ShardPartitioning parts,
               std::vector<Shard> shards)
      : options_(std::move(options)),
        parts_(parts),
        shards_(std::move(shards)) {}

  ShardedIndexOptions options_;
  ShardPartitioning parts_;
  std::vector<Shard> shards_;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_SHARDED_SHARDED_INDEX_H_
