#include "index/sharded/sharded_index.h"

#include <algorithm>
#include <utility>

#include "exec/thread_pool.h"
#include "index/leaf_scanner.h"
#include "storage/series_file.h"

namespace hydra {
namespace {

// One shard's contribution to a scatter: its answer plus its own counter
// sink (merged into the query's counters in shard order afterwards, so
// the sums are deterministic no matter how the tasks interleaved).
struct ShardOutcome {
  Result<KnnAnswer> answer{Status::Unavailable("shard not searched")};
  QueryCounters counters;
};

struct MergeEntry {
  double distance;
  int64_t global_id;
};

// Root-cause selection over the per-shard statuses, in shard order: the
// first non-Cancelled error wins (sibling tasks cancelled BECAUSE a shard
// failed must not mask the failure itself); all-cancelled means the
// cancellation is the story.
Status PickFailure(const std::vector<size_t>& active,
                   const std::vector<ShardOutcome>& outcomes) {
  Status failure = Status::OK();
  for (size_t s : active) {
    if (outcomes[s].answer.ok()) continue;
    const Status st = outcomes[s].answer.status();
    if (failure.ok() ||
        (failure.code() == StatusCode::kCancelled &&
         st.code() != StatusCode::kCancelled)) {
      failure = st;
    }
  }
  return failure;
}

// Losslessly merges per-shard exact top-k lists into the global top-k.
// Works in true-distance space: every shard distance is the correctly
// rounded sqrt of the full squared distance the unsharded index computes
// for the same (query, series) pair, so the merged values are
// bit-identical to the unsharded answer's; ordering is (distance, global
// id) ascending, the same order AnswerSet::Finish emits (ties on exact
// equal distances are the repo-wide id-choice caveat).
KnnAnswer MergeAnswers(const ShardPartitioning& parts,
                       const std::vector<size_t>& active,
                       const std::vector<ShardOutcome>& outcomes, size_t k) {
  std::vector<MergeEntry> entries;
  for (size_t s : active) {
    const KnnAnswer& a = outcomes[s].answer.value();
    for (size_t i = 0; i < a.ids.size(); ++i) {
      entries.push_back({a.distances[i], parts.GlobalId(s, a.ids[i])});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const MergeEntry& x, const MergeEntry& y) {
              if (x.distance != y.distance) return x.distance < y.distance;
              return x.global_id < y.global_id;
            });
  const size_t take = std::min(k, entries.size());
  KnnAnswer merged;
  merged.ids.reserve(take);
  merged.distances.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    merged.ids.push_back(entries[i].global_id);
    merged.distances.push_back(entries[i].distance);
  }
  return merged;
}

}  // namespace

Result<std::unique_ptr<ShardedIndex>> ShardedIndex::Build(
    const Dataset& data, const ShardedIndexOptions& options) {
  ShardedIndexOptions opts = options;
  if (opts.num_shards == 0) opts.num_shards = 1;
  const ShardPartitioning parts(opts.scheme, data.size(), opts.num_shards);
  std::vector<Dataset> partitions = PartitionDataset(data, parts);

  std::vector<Shard> shards(opts.num_shards);
  for (size_t s = 0; s < opts.num_shards; ++s) {
    Shard& shard = shards[s];
    shard.data = std::make_unique<Dataset>(std::move(partitions[s]));
    // An empty shard (more shards than series) holds no index at all:
    // the scatter skips it and the merge treats it as zero candidates.
    if (shard.data->empty()) continue;

    SeriesProvider* provider = nullptr;
    if (!opts.storage_dir.empty()) {
      // Disk-resident shard: its own file, its own pool. Independent
      // pools are the failure-isolation boundary — a fault config or pin
      // storm on one shard cannot touch another's pages.
      const std::string path =
          opts.storage_dir + "/shard-" + std::to_string(s) + ".hsf";
      const Status written = WriteSeriesFile(path, *shard.data);
      if (!written.ok()) return written;
      const uint64_t page_series =
          opts.build.page_series != 0 ? opts.build.page_series : 16;
      const uint64_t capacity =
          opts.build.capacity_pages != 0 ? opts.build.capacity_pages : 32;
      HYDRA_ASSIGN_OR_RETURN(shard.pool,
                             BufferManager::Open(path, page_series, capacity));
      provider = shard.pool.get();
    } else {
      shard.memory = std::make_unique<InMemoryProvider>(shard.data.get());
      provider = shard.memory.get();
    }
    // The factory builds whatever method the topology asked for — the
    // sharded layer itself is method-blind.
    BuildOptions build = opts.build;
    build.page_series = 0;
    build.capacity_pages = 0;
    HYDRA_ASSIGN_OR_RETURN(shard.index, BuildIndex(*shard.data, provider, build));
  }
  return std::unique_ptr<ShardedIndex>(
      new ShardedIndex(std::move(opts), parts, std::move(shards)));
}

std::string ShardedIndex::name() const {
  return "sharded(" + options_.build.method + ")x" +
         std::to_string(shards_.size());
}

IndexCapabilities ShardedIndex::capabilities() const {
  // The fleet can only promise what EVERY populated shard promises
  // (accuracy modes, concurrent/batched serving); it is disk-resident as
  // soon as any shard is.
  IndexCapabilities merged;
  merged.exact = true;
  merged.ng_approximate = true;
  merged.epsilon_approximate = true;
  merged.delta_epsilon_approximate = true;
  merged.concurrent_queries = true;
  merged.batched_queries = true;
  merged.disk_resident = false;
  bool first = true;
  for (const Shard& shard : shards_) {
    if (shard.index == nullptr) continue;
    const IndexCapabilities c = shard.index->capabilities();
    merged.exact &= c.exact;
    merged.ng_approximate &= c.ng_approximate;
    merged.epsilon_approximate &= c.epsilon_approximate;
    merged.delta_epsilon_approximate &= c.delta_epsilon_approximate;
    merged.concurrent_queries &= c.concurrent_queries;
    merged.batched_queries &= c.batched_queries;
    merged.disk_resident |= c.disk_resident;
    if (first) {
      merged.summarization = c.summarization;
      first = false;
    }
  }
  return merged;
}

size_t ShardedIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const Shard& shard : shards_) {
    if (shard.index != nullptr) total += shard.index->MemoryBytes();
  }
  return total;
}

Result<KnnAnswer> ShardedIndex::Search(std::span<const float> query,
                                       const SearchParams& params,
                                       QueryCounters* counters) const {
  std::vector<size_t> active;
  active.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].index != nullptr) active.push_back(s);
  }
  if (active.empty()) return KnnAnswer{};  // an empty collection

  // One budget for the whole scatter: the query's deadline/cancel token
  // is resolved ONCE here and shared by every shard task, so queue wait
  // and a slow shard draw from the same clock. When no caller token
  // exists this call owns one anyway — that is what lets the first shard
  // failure cancel the siblings instead of letting them run to
  // completion for an answer that is already lost.
  SearchParams shard_params = params;
  const bool owns_token = (params.cancel == nullptr);
  std::shared_ptr<CancellationToken> cancel = ResolveCancellation(params);
  if (cancel == nullptr) cancel = std::make_shared<CancellationToken>();
  shard_params.cancel = cancel;
  shard_params.deadline_ms = 0;  // the budget lives in the shared token now

  std::vector<ShardOutcome> outcomes(shards_.size());
  if (active.size() == 1) {
    // Degenerate scatter (one populated shard): run inline — same
    // semantics, no pool round-trip.
    const size_t s = active.front();
    outcomes[s].answer =
        shards_[s].index->Search(query, shard_params, &outcomes[s].counters);
  } else {
    TaskGroup group(&ThreadPool::Global());
    for (size_t s : active) {
      group.Run([this, s, query, &shard_params, &outcomes, &cancel,
                 owns_token] {
        outcomes[s].answer = shards_[s].index->Search(
            query, shard_params, &outcomes[s].counters);
        if (!outcomes[s].answer.ok() && owns_token) cancel->Cancel();
      });
    }
    group.Wait();
  }

  // Counters sum in shard order — work done on behalf of the query is
  // charged whether or not the query survives.
  if (counters != nullptr) {
    for (size_t s : active) *counters += outcomes[s].counters;
  }
  const Status failure = PickFailure(active, outcomes);
  if (!failure.ok()) return failure;
  return MergeAnswers(parts_, active, outcomes, params.k);
}

std::vector<Result<KnnAnswer>> ShardedIndex::BatchSearch(
    std::span<const BatchQuery> batch) const {
  const size_t q = batch.size();
  std::vector<Result<KnnAnswer>> results(
      q, Result<KnnAnswer>(Status::Internal("not served")));
  if (q == 0) return results;

  std::vector<size_t> active;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].index != nullptr) active.push_back(s);
  }
  if (active.empty()) {
    for (size_t m = 0; m < q; ++m) results[m] = KnnAnswer{};
    return results;
  }

  // Per-member budgets resolved once, shared across shards — one member
  // expiring mid-scatter expires in every shard at its next cancellation
  // point, exactly like the single-query path.
  std::vector<SearchParams> member_params(q);
  for (size_t m = 0; m < q; ++m) {
    member_params[m] = batch[m].params;
    std::shared_ptr<CancellationToken> token =
        ResolveCancellation(batch[m].params);
    if (token != nullptr) {
      member_params[m].cancel = std::move(token);
      member_params[m].deadline_ms = 0;
    }
  }

  // Each shard serves the WHOLE batch through its own BatchSearch (the
  // shared-scan amortization happens inside the shard), into its own
  // per-member counter sinks.
  std::vector<std::vector<Result<KnnAnswer>>> shard_answers(shards_.size());
  std::vector<std::vector<QueryCounters>> shard_counters(shards_.size());
  TaskGroup group(&ThreadPool::Global());
  for (size_t s : active) {
    shard_counters[s].resize(q);
    group.Run([this, s, batch, &member_params, &shard_answers,
               &shard_counters] {
      std::vector<BatchQuery> local(batch.size());
      for (size_t m = 0; m < batch.size(); ++m) {
        local[m].query = batch[m].query;
        local[m].params = member_params[m];
        local[m].counters = &shard_counters[s][m];
      }
      shard_answers[s] = shards_[s].index->BatchSearch(
          std::span<const BatchQuery>(local));
    });
  }
  group.Wait();

  // Gather per member: counters in shard order, then root-cause status
  // or the merged exact top-k.
  for (size_t m = 0; m < q; ++m) {
    std::vector<ShardOutcome> outcomes(shards_.size());
    bool malformed = false;
    for (size_t s : active) {
      if (shard_answers[s].size() != q) {
        malformed = true;
        break;
      }
      outcomes[s].answer = shard_answers[s][m];
      outcomes[s].counters = shard_counters[s][m];
    }
    if (malformed) {
      results[m] = Status::Internal("shard BatchSearch count mismatch");
      continue;
    }
    if (batch[m].counters != nullptr) {
      for (size_t s : active) *batch[m].counters += outcomes[s].counters;
    }
    const Status failure = PickFailure(active, outcomes);
    if (!failure.ok()) {
      results[m] = failure;
    } else {
      results[m] = MergeAnswers(parts_, active, outcomes, batch[m].params.k);
    }
  }
  return results;
}

}  // namespace hydra
