#include "index/srs/srs.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "distance/euclidean.h"
#include "index/answer_set.h"
#include "exec/parallel_scanner.h"

namespace hydra {

Result<std::unique_ptr<SrsIndex>> SrsIndex::Build(const Dataset& data,
                                                  SeriesProvider* provider,
                                                  const SrsOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (provider == nullptr || provider->num_series() != data.size() ||
      provider->series_length() != data.length()) {
    return Status::InvalidArgument("provider does not match dataset");
  }
  if (options.projections == 0) {
    return Status::InvalidArgument("projections must be > 0");
  }
  std::unique_ptr<SrsIndex> index(new SrsIndex(provider, options));
  index->series_length_ = data.length();
  index->num_series_ = data.size();

  Rng rng(options.seed);
  index->projection_ = std::make_unique<RandomProjection>(
      data.length(), options.projections, rng);
  const size_t m = options.projections;
  index->projected_.resize(data.size() * m);
  for (size_t i = 0; i < data.size(); ++i) {
    index->projection_->Project(
        data.series(i),
        std::span<float>(index->projected_.data() + i * m, m));
  }
  return index;
}

Result<KnnAnswer> SrsIndex::Search(std::span<const float> query,
                                   const SearchParams& params,
                                   QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length mismatch");
  }
  if (params.mode == SearchMode::kExact) {
    return Status::Unimplemented("srs does not support exact search");
  }
  const size_t m = options_.projections;
  std::vector<float> qp = projection_->Project(query);

  // Order every point by projected squared distance (the index is just
  // these m-dimensional rows; this scan is the in-memory phase 1).
  std::vector<std::pair<double, int64_t>> order(num_series_);
  for (size_t i = 0; i < num_series_; ++i) {
    order[i] = {SquaredEuclidean(
                    qp, std::span<const float>(projected_.data() + i * m, m)),
                static_cast<int64_t>(i)};
    if (counters != nullptr) ++counters->lb_distances;
  }
  std::sort(order.begin(), order.end());

  const double one_plus_eps =
      params.mode == SearchMode::kDeltaEpsilon ? 1.0 + params.epsilon : 1.0;
  // δ is the success probability of the guarantee; the termination test
  // fires when the χ² tail mass leaves less than (1 − δ) probability of
  // an unseen better point.
  const double confidence =
      params.mode == SearchMode::kDeltaEpsilon ? params.delta : 1.0;
  size_t budget = static_cast<size_t>(
      options_.max_candidate_fraction * static_cast<double>(num_series_));
  budget = std::max<size_t>(budget, params.k);
  if (params.mode == SearchMode::kNgApproximate && params.nprobe > 0) {
    budget = std::max<size_t>(params.k, params.nprobe);
  }

  // Refine in ascending projected-distance order. Commits (and the χ²
  // termination rule below) run in exactly the serial order while the
  // next block of candidates is evaluated speculatively in parallel, so
  // answers match num_threads = 1.
  AnswerSet answers(params.k);
  ParallelLeafScanner scanner(query, &answers, counters, params.num_threads,
                              params.pin_budget, /*prefetch_depth=*/0,
                              ResolveCancellation(params));
  Result<size_t> probed = scanner.RefineOrdered(
      provider_, order.size(),
      /*id_at=*/[&](size_t i) { return order[i].second; },
      /*before=*/[&](size_t i) { return i < budget; },
      /*after=*/
      [&](size_t i) {
        if (params.mode == SearchMode::kDeltaEpsilon && answers.full() &&
            confidence < 1.0) {
          // Early termination: a point with true distance r = bsf/(1+ε)
          // has projected squared distance r²·χ²_m; if
          // P[χ²_m <= proj_sq / r²] >= δ, unseen points (all with
          // projected distance >= proj_sq) beat r with probability
          // <= 1 − δ.
          double r_sq =
              answers.KthDistanceSq() / (one_plus_eps * one_plus_eps);
          if (r_sq > 0.0) {
            double p =
                ChiSquaredCdf(order[i].first / r_sq, static_cast<double>(m));
            if (p >= confidence) return false;
          }
        }
        return true;
      });
  HYDRA_RETURN_IF_ERROR(probed.status());
  return answers.Finish();
}

size_t SrsIndex::MemoryBytes() const {
  return sizeof(*this) + projected_.size() * sizeof(float) +
         options_.projections * series_length_ * sizeof(float);
}

}  // namespace hydra
