#ifndef HYDRA_INDEX_SRS_SRS_H_
#define HYDRA_INDEX_SRS_SRS_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "index/index.h"
#include "storage/buffer_manager.h"
#include "transform/random_projection.h"

namespace hydra {

// SRS (Sun et al. 2014): δ-ε-approximate nearest neighbor with a tiny
// index. All points are projected to m Gaussian dimensions (m = 16 in the
// paper's configuration, "so the representations of all datasets fit in
// memory"); a query walks candidates in increasing *projected* distance,
// refines them against the raw data, and stops when either
//  (a) the early-termination test fires: the probability that a point
//      with true distance <= bsf/(1+ε) has projected distance larger than
//      the current frontier exceeds the confidence derived from δ
//      (projected squared distances are ||x−q||²·χ²_m distributed), or
//  (b) a budget of t·n candidates has been refined.
struct SrsOptions {
  size_t projections = 16;  // m
  // Maximum fraction of the dataset refined before forcing termination
  // (the SRS paper's t parameter; it bounds both time and I/O).
  double max_candidate_fraction = 0.15;
  uint64_t seed = 23;
};

class SrsIndex : public Index {
 public:
  static Result<std::unique_ptr<SrsIndex>> Build(
      const Dataset& data, SeriesProvider* provider,
      const SrsOptions& options = {});

  std::string name() const override { return "srs"; }
  IndexCapabilities capabilities() const override {
    IndexCapabilities c;
    c.ng_approximate = true;
    c.epsilon_approximate = false;  // guarantees only hold with δ < 1
    c.delta_epsilon_approximate = true;
    c.disk_resident = true;
    c.summarization = "random projection";
    return c;
  }
  size_t MemoryBytes() const override;

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

 private:
  SrsIndex(SeriesProvider* provider, const SrsOptions& options)
      : provider_(provider), options_(options) {}

  SeriesProvider* provider_;  // not owned
  SrsOptions options_;
  std::unique_ptr<RandomProjection> projection_;
  std::vector<float> projected_;  // n × m, the whole index
  size_t series_length_ = 0;
  size_t num_series_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_SRS_SRS_H_
