#ifndef HYDRA_INDEX_INDEX_H_
#define HYDRA_INDEX_INDEX_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/counters.h"
#include "common/status.h"
#include "core/dataset.h"
#include "core/metrics.h"

namespace hydra {

// Accuracy contract of a search call, following the paper's taxonomy
// (Fig. 1): exact ⊂ ε-approximate ⊂ δ-ε-approximate; ng-approximate makes
// no guarantee. For tree methods, ng-approximate visits up to `nprobe`
// leaves; for IMI, `nprobe` is the number of inverted lists; for HNSW,
// `efs` bounds the candidate set; for VA+file, `nprobe` is the number of
// raw series refined.
enum class SearchMode {
  kExact,
  kNgApproximate,
  kDeltaEpsilon,  // δ = 1 makes it ε-approximate; δ = 1, ε = 0 exact
};

struct SearchParams {
  SearchMode mode = SearchMode::kExact;
  size_t k = 1;
  // ng-approximate knobs.
  size_t nprobe = 1;
  size_t efs = 0;  // HNSW candidate-list width; 0 = use index default
  // δ-ε knobs (paper Definition 6; epsilon is the relative distance error,
  // delta the success probability of the guarantee).
  double epsilon = 0.0;
  double delta = 1.0;
  // Intra-query parallelism: leaf/candidate scans shard across up to this
  // many workers of the process-wide pool (src/exec/). 1 = fully serial,
  // preserving the pre-exec behavior bit for bit. Results are a function
  // of num_threads alone — never of pool size or scheduling — and exact
  // search returns answers identical to num_threads = 1, up to id choice
  // on exact distance ties at the k-th boundary (the counter
  // full/abandoned split may also shift; see exec/parallel_scanner.h).
  size_t num_threads = 1;
  // Inter-query parallelism: how many whole queries the serving engine
  // (exec/query_scheduler.h) overlaps on the shared pool. Search() itself
  // ignores it — it is the harness/serving knob (HYDRA_CONCURRENCY)
  // carried alongside the other workload parameters. 1 = the paper's
  // one-query-at-a-time protocol.
  size_t concurrency = 1;
  // Cap on the pinned pages this query may hold concurrently on a shared
  // bounded buffer pool (0 = provider default). The serving engine sets
  // it to MaxConcurrentPins() / concurrency so overlapping queries can
  // never starve each other of pins; the scan layers clamp their
  // provider-backed fan-outs to it (exec/parallel_scanner.h). Affects
  // only shard counts, never answers.
  uint64_t pin_budget = 0;
  // Asynchronous readahead depth in buffer-pool pages: the scan layers
  // announce this many pages of their upcoming id stream to the
  // provider's background prefetcher before evaluating the current run,
  // overlapping disk reads with distance kernels
  // (index/leaf_scanner.h, storage/buffer_manager.h). 0 = unset, which
  // falls back to the HYDRA_PREFETCH environment default (itself 0 = off,
  // the serial-identical seed behavior). A pure cache hint: answers are
  // bit-identical at every depth; only wall-clock and the hit/miss &
  // prefetch counters move. The serving engine clamps it so concurrent
  // queries share the pool's readahead budget (MaxPrefetchPages()).
  size_t prefetch_depth = 0;
  // Sentinel for prefetch_depth: readahead FORCED off, even when
  // HYDRA_PREFETCH is set — the harness uses it for the depth-0 baseline
  // rows so an exported env default cannot contaminate them.
  static constexpr size_t kPrefetchOff = static_cast<size_t>(-1);
  // Per-query wall-clock budget in milliseconds (0 = none). When set and
  // no `cancel` token is supplied, the search layers arm a deadline token
  // themselves (index/leaf_scanner.h ResolveCancellation); the serving
  // engine instead measures the budget from Submit time, so queue wait
  // counts against it. On expiry the query abandons work at its next
  // cancellation point and returns Status::DeadlineExceeded — never a
  // silently truncated answer.
  double deadline_ms = 0;
  // Cooperative cancellation handle shared with the caller: fire it and
  // every worker of this query stops at its next cancellation point
  // (page fetch, tree node pop, refinement commit), pins are released and
  // still-queued prefetches are skipped. Null = not cancellable (beyond
  // deadline_ms above). Shared because announced readahead can outlive
  // the Search() call itself.
  std::shared_ptr<CancellationToken> cancel;
};

// Capability flags for the taxonomy table (paper Table 1 / Fig. 1).
struct IndexCapabilities {
  bool exact = false;
  bool ng_approximate = false;
  bool epsilon_approximate = false;
  bool delta_epsilon_approximate = false;
  bool disk_resident = false;
  // Safe to call Search() from several threads at once on one instance.
  // True for every read-only index (all shared state — provider, pool,
  // kernels — is thread-safe); ADS+ answers false because queries refine
  // the tree in place. The serving engine clamps its admission to 1 for
  // such indexes instead of racing them.
  bool concurrent_queries = true;
  // BatchSearch() does better than the default per-query loop: the index
  // amortizes page fetches and distance kernels across the batch (shared
  // scans, tree co-traversal, batched LUT phase). The serving engine only
  // coalesces queued queries for indexes that answer true — and never for
  // indexes with concurrent_queries == false (ADS+ mutates per query, so
  // it must not even see a multi-query call).
  bool batched_queries = false;
  std::string summarization;  // e.g. "EAPCA", "iSAX", "OPQ"
};

// One member of a BatchSearch() call: a query plus its own parameters and
// its own counter sink. Queries in a batch are independent requests that
// happen to be evaluated together — each keeps its own k, mode, abandon
// thresholds, deadline/cancel token, and QueryCounters attribution.
struct BatchQuery {
  std::span<const float> query;
  SearchParams params;
  QueryCounters* counters = nullptr;  // may be null
};

// Common interface of the ten methods under evaluation. Indexes are built
// once over a dataset and then serve any number of queries; Search is
// const so one index can serve different modes without rebuilding (the
// paper highlights this as a key advantage of the extended data-series
// methods over accuracy-at-build-time methods like QALSH/HNSW/IMI).
struct BuildOptions;  // index/factory.h

class Index {
 public:
  virtual ~Index() = default;

  // Method-independent entry point: opens the series file at `path`,
  // assembles the storage it will be served from (page-pinning pool or
  // in-memory copy, per BuildOptions), builds the index named by
  // `options.method` over it, and returns ONE owning object — no caller
  // juggles {reader, pool, dataset, index} lifetimes or special-cases
  // construction per method anymore. Implemented in index/factory.cc;
  // generic layers (ShardedIndex, harness, CLI) build through this.
  static Result<std::unique_ptr<Index>> Open(const std::string& path,
                                             const BuildOptions& options);

  virtual std::string name() const = 0;
  virtual IndexCapabilities capabilities() const = 0;

  // Approximate main-memory footprint of the index structure in bytes
  // (excluding the raw data unless the method stores it internally).
  virtual size_t MemoryBytes() const = 0;

  virtual Result<KnnAnswer> Search(std::span<const float> query,
                                   const SearchParams& params,
                                   QueryCounters* counters) const = 0;

  // Evaluates a batch of independent queries in one call, returning one
  // Result per member in batch order. The contract mirrors Q separate
  // Search() calls exactly: every member's answer is what its own
  // Search(query, params, counters) would return (bit-identical for exact
  // search, up to id choice on exact distance ties at the k-th boundary),
  // and a member that fails — typed I/O error, expired deadline, fired
  // cancel token — fails alone with its own Status while the rest of the
  // batch completes. The base implementation IS the per-query loop;
  // indexes that set capabilities().batched_queries override it to share
  // page fetches, SIMD kernel passes, and lower-bound computation across
  // the batch (see index/batch_scanner.h). Only I/O and cache locality
  // are shared, never arithmetic, which is what makes the equivalence
  // provable (tests/batch_search_test.cc holds every covered index to
  // it).
  virtual std::vector<Result<KnnAnswer>> BatchSearch(
      std::span<const BatchQuery> batch) const;
};

}  // namespace hydra

#endif  // HYDRA_INDEX_INDEX_H_
