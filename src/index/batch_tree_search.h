#ifndef HYDRA_INDEX_BATCH_TREE_SEARCH_H_
#define HYDRA_INDEX_BATCH_TREE_SEARCH_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "common/counters.h"
#include "index/answer_set.h"
#include "index/batch_scanner.h"
#include "index/index.h"
#include "index/leaf_scanner.h"
#include "storage/buffer_manager.h"

namespace hydra {

// Query-batched best-first k-NN co-traversal for EXACT search: one heap
// walk over the tree serves every query in the batch, computing all
// queries' lower bounds at each node visit (the node's summarization is
// touched once, cache-hot, for Q bound evaluations) and scanning each
// leaf ONCE for the subset of queries whose bound does not prune it
// (BatchLeafScanner — one page fetch feeds Q distance kernels).
//
// `Tree` must provide the TreeKnnSearch concept (SearchRoots, IsLeaf,
// NodeChildren, MinDistSq) plus
//   std::span<const int64_t> LeafIds(NodeId) const;
// so the shared scanner can walk a leaf's candidates directly.
//
// Exactness argument (why batching cannot change any exact answer): the
// heap is keyed by the MINIMUM lower bound across live queries, so the
// visit order differs from each query's solo best-first order — but a
// query only participates in a leaf scan when its own admissible bound
// passes its own current k-th distance, every completed distance is the
// exact value (BatchLeafScanner evaluates pairs with the single-query
// kernel), and a true k-NN member can never be abandoned or pruned
// (bound <= true distance <= running k-th). Evaluation order therefore
// cannot move any query's exact top-k, up to id choice on exact distance
// ties at the k-th boundary — the same caveat the parallel fan-out
// already carries. Approximate modes (ng / δ-ε) are order-sensitive by
// design, so callers route them through per-query Search instead.
//
// Failure isolation: a leaf fetch failure fails exactly the queries that
// were actively scanning that leaf; a fired deadline/cancel token fails
// only its own slot (checked per node pop and per pinned page). Both
// leave the slot's typed Status in the scanner; surviving queries keep
// traversing.
//
// ctxs[q] is query q's per-query precomputation (the same Ctx solo
// search builds); slot q of `scanner` must be query q.
template <typename Tree, typename Ctx>
void BatchedTreeKnnSearch(const Tree& tree, SeriesProvider* provider,
                          std::span<const Ctx> ctxs,
                          BatchLeafScanner* scanner) {
  struct Entry {
    double key;  // min over live-at-push queries of lbs[q]
    typename std::decay_t<decltype(tree.SearchRoots())>::value_type node;
    std::vector<double> lbs;  // per-query admissible LB², inf for dead
    bool operator>(const Entry& o) const { return key > o.key; }
  };
  using NodeId = decltype(Entry::node);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const size_t nq = ctxs.size();

  std::vector<Entry> heap;
  auto heap_push = [&heap](Entry e) {
    heap.push_back(std::move(e));
    std::push_heap(heap.begin(), heap.end(), std::greater<Entry>{});
  };
  auto heap_pop = [&heap] {
    std::pop_heap(heap.begin(), heap.end(), std::greater<Entry>{});
    Entry top = std::move(heap.back());
    heap.pop_back();
    return top;
  };
  // All live queries' bounds for one node, computed while the node's
  // summarization is cache-hot. Each bound is charged to its query.
  auto compute_entry = [&](NodeId node) {
    Entry e{kInf, node, std::vector<double>(nq, kInf)};
    for (size_t q = 0; q < nq; ++q) {
      if (!scanner->alive(q)) continue;
      e.lbs[q] = tree.MinDistSq(ctxs[q], node);
      if (scanner->counters(q) != nullptr) {
        ++scanner->counters(q)->lb_distances;
      }
      e.key = std::min(e.key, e.lbs[q]);
    }
    return e;
  };

  for (NodeId root : tree.SearchRoots()) {
    Entry e = compute_entry(root);
    if (e.key == kInf) continue;  // no live query
    for (size_t q = 0; q < nq; ++q) {
      if (e.lbs[q] < kInf && scanner->counters(q) != nullptr) {
        ++scanner->counters(q)->nodes_pushed;
      }
    }
    heap_push(std::move(e));
  }

  std::vector<size_t> active;
  while (!heap.empty()) {
    // Cancellation point per node pop: a fired token removes only its
    // own slot; the loop ends when nobody is left.
    scanner->CheckCancellations();
    if (scanner->live_count() == 0) return;
    Entry top = heap_pop();
    // Every remaining entry has key >= top.key and per-query bounds
    // >= its key, so once the min bound exceeds every live query's
    // k-th distance nothing below can improve any answer.
    double max_kth = 0.0;
    for (size_t q = 0; q < nq; ++q) {
      if (scanner->alive(q)) {
        max_kth = std::max(max_kth, scanner->KthDistanceSq(q));
      }
    }
    if (top.key > max_kth) break;
    if (tree.IsLeaf(top.node)) {
      // Per-query prune against CURRENT k-th distances (bounds were
      // computed at push time; the recheck only shrinks the active set).
      active.clear();
      for (size_t q = 0; q < nq; ++q) {
        if (scanner->alive(q) && top.lbs[q] <= scanner->KthDistanceSq(q)) {
          active.push_back(q);
        }
      }
      if (active.empty()) continue;
      for (size_t q : active) {
        if (scanner->counters(q) != nullptr) {
          ++scanner->counters(q)->leaves_visited;
        }
      }
      scanner->ScanIds(provider, tree.LeafIds(top.node), active);
    } else {
      for (NodeId child : tree.NodeChildren(top.node)) {
        Entry e = compute_entry(child);
        bool wanted = false;
        for (size_t q = 0; q < nq; ++q) {
          if (!scanner->alive(q)) continue;
          if (e.lbs[q] <= scanner->KthDistanceSq(q)) {
            wanted = true;
            if (scanner->counters(q) != nullptr) {
              ++scanner->counters(q)->nodes_pushed;
            }
          }
        }
        if (wanted) heap_push(std::move(e));
      }
    }
  }
}

// The shared BatchSearch body of the tree indexes (iSAX2+, DSTree):
// exact-mode members co-traverse through BatchedTreeKnnSearch; members in
// the order-sensitive approximate modes (ng visits leaves in bsf order,
// δ-ε stops on a bsf condition — batching would legitimately change their
// answers) fall back to their own solo Search inside the batch, as does a
// lone exact member (which keeps its intra-query fan-out). Invalid
// members fail alone with the same statuses solo Search returns.
// `TreeIndex` must provide the BatchedTreeKnnSearch concept plus
// MakeQueryContext and Search.
template <typename TreeIndex>
std::vector<Result<KnnAnswer>> TreeIndexBatchSearch(
    const TreeIndex& index, SeriesProvider* provider, size_t series_length,
    std::span<const BatchQuery> batch) {
  std::vector<Result<KnnAnswer>> results(batch.size(),
                                         Status::Internal("unset"));
  std::vector<size_t> shared;
  for (size_t i = 0; i < batch.size(); ++i) {
    const BatchQuery& member = batch[i];
    if (member.params.k == 0) {
      results[i] = Status::InvalidArgument("k must be > 0");
    } else if (member.query.size() != series_length) {
      results[i] = Status::InvalidArgument("query length mismatch");
    } else if (member.params.mode == SearchMode::kExact) {
      shared.push_back(i);
    } else {
      results[i] = index.Search(member.query, member.params, member.counters);
    }
  }
  if (shared.size() <= 1) {
    for (size_t i : shared) {
      results[i] = index.Search(batch[i].query, batch[i].params,
                                batch[i].counters);
    }
    return results;
  }
  size_t prefetch_depth = 0;
  for (size_t i : shared) {
    prefetch_depth =
        std::max(prefetch_depth, ResolvePrefetchDepth(batch[i].params));
  }
  using Ctx = decltype(index.MakeQueryContext(batch.front().query));
  BatchLeafScanner scanner(prefetch_depth);
  std::vector<Ctx> ctxs;
  std::vector<std::unique_ptr<AnswerSet>> answers;
  ctxs.reserve(shared.size());
  answers.reserve(shared.size());
  for (size_t i : shared) {
    ctxs.push_back(index.MakeQueryContext(batch[i].query));
    answers.push_back(std::make_unique<AnswerSet>(batch[i].params.k));
    scanner.AddQuery(batch[i].query, answers.back().get(), batch[i].counters,
                     ResolveCancellation(batch[i].params));
  }
  BatchedTreeKnnSearch(index, provider, std::span<const Ctx>(ctxs), &scanner);
  for (size_t m = 0; m < shared.size(); ++m) {
    if (scanner.alive(m)) {
      results[shared[m]] = answers[m]->Finish();
    } else {
      results[shared[m]] = scanner.status(m);
    }
  }
  return results;
}

}  // namespace hydra

#endif  // HYDRA_INDEX_BATCH_TREE_SEARCH_H_
