#ifndef HYDRA_INDEX_FACTORY_H_
#define HYDRA_INDEX_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "index/index.h"

namespace hydra {

class SeriesProvider;  // storage/buffer_manager.h

// Method-independent construction parameters: the union of the per-method
// option structs, with 0 meaning "the method's own default". One struct
// so generic layers — ShardedIndex, the harness, the CLI — can build ANY
// method without a per-method if/else ladder; a caller that needs the
// full per-method surface still uses the typed Build() directly.
struct BuildOptions {
  std::string method = "scan";
  // Tree/file shape (dstree, isax, adsplus, sfa, mtree, vafile).
  size_t leaf_capacity = 0;
  size_t segments = 0;
  size_t num_features = 0;
  size_t histogram_pairs = 0;
  // Graph/quantization (hnsw, imi, srs, qalsh).
  size_t hnsw_m = 0;
  size_t hnsw_ef_construction = 0;
  size_t imi_coarse_k = 0;
  size_t srs_projections = 0;
  size_t qalsh_hashes = 0;
  // Storage shape used by Index::Open (and the sharded builder) when it
  // opens a series file: series per buffer-pool page and pool capacity in
  // pages. 0,0 = serve in memory (the whole file is read into RAM).
  size_t page_series = 0;
  size_t capacity_pages = 0;
};

// The method names BuildIndex accepts, in taxonomy order.
const std::vector<std::string>& KnownMethods();

// Builds one index of `options.method` over `data`, serving raw series
// from `provider`. In-memory methods (hnsw, imi, flann) ignore the
// provider. The returned index references `data`/`provider` per its
// method's contract — the caller keeps both alive (Index::Open below is
// the owning variant).
Result<std::unique_ptr<Index>> BuildIndex(const Dataset& data,
                                          SeriesProvider* provider,
                                          const BuildOptions& options);

}  // namespace hydra

#endif  // HYDRA_INDEX_FACTORY_H_
