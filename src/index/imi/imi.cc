#include "index/imi/imi.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <unordered_set>

#include "common/rng.h"
#include "distance/euclidean.h"
#include "index/answer_set.h"
#include "index/leaf_scanner.h"
#include "transform/kmeans.h"

namespace hydra {

Result<std::unique_ptr<ImiIndex>> ImiIndex::Build(const Dataset& data,
                                                  const ImiOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (data.length() < 2) {
    return Status::InvalidArgument("IMI needs dimensionality >= 2");
  }
  std::unique_ptr<ImiIndex> index(new ImiIndex());
  index->dim_ = data.length();
  index->half_ = data.length() / 2;
  index->use_opq_ = options.use_opq;

  Rng rng(options.seed);
  const size_t n = data.size();
  const size_t train_n = std::min<size_t>(options.train_sample, n);

  // Training sample (random subset without replacement).
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (size_t i = 0; i < train_n; ++i) {
    std::swap(perm[i], perm[i + rng.NextUint64(n - i)]);
  }
  std::vector<float> train(train_n * index->dim_);
  for (size_t i = 0; i < train_n; ++i) {
    auto s = data.series(perm[i]);
    std::copy(s.begin(), s.end(), train.begin() + i * index->dim_);
  }

  // OPQ rotation learned on the sample (identity when disabled).
  if (index->use_opq_) {
    OpqOptions oo;
    oo.pq.num_subquantizers = options.pq_subquantizers;
    oo.pq.codebook_size = options.pq_codebook;
    oo.pq.train_iterations = options.train_iterations;
    oo.outer_iterations = options.opq_iterations;
    HYDRA_ASSIGN_OR_RETURN(auto opq, OptimizedProductQuantizer::Train(
                                         train, index->dim_, oo, rng));
    index->opq_ = std::make_unique<OptimizedProductQuantizer>(std::move(opq));
    // Replace the sample with its rotated image for all further training.
    std::vector<float> rotated(train.size());
    for (size_t i = 0; i < train_n; ++i) {
      index->opq_->Rotate(
          std::span<const float>(train.data() + i * index->dim_, index->dim_),
          std::span<float>(rotated.data() + i * index->dim_, index->dim_));
    }
    train.swap(rotated);
  }

  // Coarse codebooks on the two halves.
  const size_t h1 = index->half_, h2 = index->dim_ - index->half_;
  std::vector<float> train1(train_n * h1), train2(train_n * h2);
  for (size_t i = 0; i < train_n; ++i) {
    std::copy_n(train.begin() + i * index->dim_, h1,
                train1.begin() + i * h1);
    std::copy_n(train.begin() + i * index->dim_ + h1, h2,
                train2.begin() + i * h2);
  }
  KmeansOptions ko;
  ko.num_clusters = options.coarse_k;
  ko.max_iterations = options.train_iterations;
  KmeansResult km1 = Kmeans(train1, h1, ko, rng);
  KmeansResult km2 = Kmeans(train2, h2, ko, rng);
  index->coarse_k_ = km1.centroids.size() / h1;
  size_t k2 = km2.centroids.size() / h2;
  index->coarse_k_ = std::min(index->coarse_k_, k2);
  index->centroids1_.assign(km1.centroids.begin(),
                            km1.centroids.begin() + index->coarse_k_ * h1);
  index->centroids2_.assign(km2.centroids.begin(),
                            km2.centroids.begin() + index->coarse_k_ * h2);

  // Residual PQ trained on sample residuals.
  std::vector<float> residuals(train_n * index->dim_);
  for (size_t i = 0; i < train_n; ++i) {
    const float* v = train.data() + i * index->dim_;
    uint32_t c1 = NearestCentroid(index->centroids1_, h1, {v, h1});
    uint32_t c2 = NearestCentroid(index->centroids2_, h2, {v + h1, h2});
    for (size_t d = 0; d < h1; ++d) {
      residuals[i * index->dim_ + d] = v[d] - index->centroids1_[c1 * h1 + d];
    }
    for (size_t d = 0; d < h2; ++d) {
      residuals[i * index->dim_ + h1 + d] =
          v[h1 + d] - index->centroids2_[c2 * h2 + d];
    }
  }
  PqOptions po;
  po.num_subquantizers = options.pq_subquantizers;
  po.codebook_size = options.pq_codebook;
  po.train_iterations = options.train_iterations;
  HYDRA_ASSIGN_OR_RETURN(auto rpq, ProductQuantizer::Train(
                                       residuals, index->dim_, po, rng));
  index->residual_pq_ = std::make_unique<ProductQuantizer>(std::move(rpq));

  // Populate the K×K inverted lists with ids + residual codes.
  index->lists_.resize(index->coarse_k_ * index->coarse_k_);
  index->codes_.resize(index->lists_.size());
  std::vector<float> rotated(index->dim_);
  std::vector<float> residual(index->dim_);
  std::vector<uint16_t> code(index->residual_pq_->num_subquantizers());
  for (size_t i = 0; i < n; ++i) {
    auto s = data.series(i);
    std::span<const float> v;
    if (index->use_opq_) {
      index->opq_->Rotate(s, rotated);
      v = rotated;
    } else {
      v = s;
    }
    uint32_t c1 = NearestCentroid(index->centroids1_, h1, v.subspan(0, h1));
    uint32_t c2 = NearestCentroid(index->centroids2_, h2, v.subspan(h1, h2));
    for (size_t d = 0; d < h1; ++d) {
      residual[d] = v[d] - index->centroids1_[c1 * h1 + d];
    }
    for (size_t d = 0; d < h2; ++d) {
      residual[h1 + d] = v[h1 + d] - index->centroids2_[c2 * h2 + d];
    }
    index->residual_pq_->Encode(residual, code);
    size_t cell = index->CellIndex(c1, c2);
    index->lists_[cell].push_back(static_cast<int64_t>(i));
    index->codes_[cell].insert(index->codes_[cell].end(), code.begin(),
                               code.end());
  }
  return index;
}

Result<KnnAnswer> ImiIndex::Search(std::span<const float> query,
                                   const SearchParams& params,
                                   QueryCounters* counters) const {
  if (params.k == 0) return Status::InvalidArgument("k must be > 0");
  if (params.mode != SearchMode::kNgApproximate) {
    return Status::Unimplemented("imi supports ng-approximate search only");
  }
  if (query.size() != dim_) {
    return Status::InvalidArgument("query length mismatch");
  }
  const size_t h1 = half_, h2 = dim_ - half_;
  std::vector<float> rotated(dim_);
  std::span<const float> q;
  if (use_opq_) {
    opq_->Rotate(query, rotated);
    q = rotated;
  } else {
    q = query;
  }

  // Distances from the query halves to every coarse codeword, sorted.
  std::vector<std::pair<double, uint32_t>> d1(coarse_k_), d2(coarse_k_);
  for (size_t c = 0; c < coarse_k_; ++c) {
    d1[c] = {SquaredEuclidean(
                 q.subspan(0, h1),
                 std::span<const float>(centroids1_.data() + c * h1, h1)),
             static_cast<uint32_t>(c)};
    d2[c] = {SquaredEuclidean(
                 q.subspan(h1, h2),
                 std::span<const float>(centroids2_.data() + c * h2, h2)),
             static_cast<uint32_t>(c)};
  }
  std::sort(d1.begin(), d1.end());
  std::sort(d2.begin(), d2.end());

  // Multi-sequence traversal: enumerate grid cells (i, j) in increasing
  // d1[i] + d2[j] with a frontier heap.
  struct Cell {
    double dist;
    uint32_t i, j;
    bool operator>(const Cell& o) const { return dist > o.dist; }
  };
  std::priority_queue<Cell, std::vector<Cell>, std::greater<Cell>> frontier;
  std::unordered_set<uint64_t> seen;
  auto push_cell = [&](uint32_t i, uint32_t j) {
    if (i >= coarse_k_ || j >= coarse_k_) return;
    uint64_t key = (static_cast<uint64_t>(i) << 32) | j;
    if (!seen.insert(key).second) return;
    frontier.push({d1[i].first + d2[j].first, i, j});
  };
  push_cell(0, 0);

  // Residual ADC table. Re-ranking residuals against a query-minus-
  // -centroid vector is cell-dependent; the standard single-table
  // approximation uses the query relative to the *visited* cell, which we
  // compute per cell below (exact ADC per cell, table per cell half).
  AnswerSet answers(params.k);
  std::shared_ptr<CancellationToken> cancel = ResolveCancellation(params);
  const size_t nprobe = std::max<size_t>(params.nprobe, 1);
  size_t visited_lists = 0;
  std::vector<float> qres(dim_);
  while (!frontier.empty() && visited_lists < nprobe) {
    // Cancellation point: once per frontier cell — an inverted list's ADC
    // sweep is the unit of work between deadline checks.
    if (cancel != nullptr) {
      HYDRA_RETURN_IF_ERROR(cancel->Check());
    }
    Cell cell = frontier.top();
    frontier.pop();
    push_cell(cell.i + 1, cell.j);
    push_cell(cell.i, cell.j + 1);

    uint32_t c1 = d1[cell.i].second, c2 = d2[cell.j].second;
    const auto& list = lists_[CellIndex(c1, c2)];
    if (list.empty()) continue;  // only non-empty lists count toward nprobe
    ++visited_lists;
    if (counters != nullptr) ++counters->leaves_visited;

    // Query residual w.r.t. this cell's centroids.
    for (size_t d = 0; d < h1; ++d) {
      qres[d] = q[d] - centroids1_[c1 * h1 + d];
    }
    for (size_t d = 0; d < h2; ++d) {
      qres[h1 + d] = q[h1 + d] - centroids2_[c2 * h2 + d];
    }
    std::vector<double> table = residual_pq_->AdcTable(qres);
    const auto& cell_codes = codes_[CellIndex(c1, c2)];
    const size_t m = residual_pq_->num_subquantizers();
    for (size_t e = 0; e < list.size(); ++e) {
      double d = residual_pq_->AdcDistanceSq(
          table, std::span<const uint16_t>(cell_codes.data() + e * m, m));
      if (counters != nullptr) ++counters->lb_distances;
      answers.Offer(d, list[e]);
    }
  }
  // Note: distances reported are ADC estimates (IMI never reads raw
  // series), mirroring the paper's observation that IMI's returned order
  // is based on compressed-domain distances.
  return answers.Finish();
}

size_t ImiIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  total += centroids1_.size() * sizeof(float);
  total += centroids2_.size() * sizeof(float);
  for (const auto& l : lists_) total += sizeof(l) + l.size() * sizeof(int64_t);
  for (const auto& c : codes_) {
    total += sizeof(c) + c.size() * sizeof(uint16_t);
  }
  return total;
}

size_t ImiIndex::num_nonempty_cells() const {
  size_t count = 0;
  for (const auto& l : lists_) count += l.empty() ? 0 : 1;
  return count;
}

}  // namespace hydra
