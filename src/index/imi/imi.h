#ifndef HYDRA_INDEX_IMI_IMI_H_
#define HYDRA_INDEX_IMI_IMI_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "index/index.h"
#include "transform/opq.h"
#include "transform/product_quantizer.h"

namespace hydra {

// Inverted Multi-Index (Babenko & Lempitsky 2015) with an OPQ front-end,
// the configuration the paper evaluates via Faiss.
//
// The vector space is split into two halves, each clustered into K coarse
// codewords; the index is the K×K grid of inverted lists. A query ranks
// cells with the multi-sequence algorithm (cells enumerated in increasing
// summed half-distance order) and visits up to nprobe non-empty lists.
// Candidates are re-ranked with in-memory PQ codes of the residuals —
// like the paper's setup, IMI never touches raw series at query time,
// which is why its MAP can fall well below recall (Fig. 5a).
struct ImiOptions {
  size_t coarse_k = 64;         // codewords per half (K)
  size_t pq_subquantizers = 8;  // residual PQ m
  size_t pq_codebook = 256;     // residual PQ codebook size
  size_t train_sample = 4096;   // series used to train codebooks
  size_t train_iterations = 20;
  bool use_opq = true;
  size_t opq_iterations = 4;
  uint64_t seed = 11;
};

class ImiIndex : public Index {
 public:
  static Result<std::unique_ptr<ImiIndex>> Build(const Dataset& data,
                                                 const ImiOptions& options =
                                                     {});

  std::string name() const override { return "imi"; }
  IndexCapabilities capabilities() const override {
    IndexCapabilities c;
    c.ng_approximate = true;
    c.disk_resident = true;  // lists + codes can live out of core
    c.summarization = "OPQ";
    return c;
  }
  size_t MemoryBytes() const override;

  Result<KnnAnswer> Search(std::span<const float> query,
                           const SearchParams& params,
                           QueryCounters* counters) const override;

  // Introspection for tests.
  size_t num_nonempty_cells() const;
  size_t coarse_k() const { return coarse_k_; }

 private:
  ImiIndex() = default;

  size_t CellIndex(size_t c1, size_t c2) const { return c1 * coarse_k_ + c2; }

  size_t dim_ = 0;
  size_t half_ = 0;  // dimensions in the first half
  size_t coarse_k_ = 0;
  bool use_opq_ = false;
  std::unique_ptr<OptimizedProductQuantizer> opq_;  // rotation + unused pq
  std::vector<float> centroids1_;  // K × half_
  std::vector<float> centroids2_;  // K × (dim_ − half_)
  std::unique_ptr<ProductQuantizer> residual_pq_;
  std::vector<std::vector<int64_t>> lists_;    // K×K inverted lists
  std::vector<std::vector<uint16_t>> codes_;   // parallel residual codes
};

}  // namespace hydra

#endif  // HYDRA_INDEX_IMI_IMI_H_
