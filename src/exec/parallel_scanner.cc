#include "exec/parallel_scanner.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace hydra {

namespace {
// Candidates per batch-kernel call inside a worker; bounds threshold
// staleness exactly like LeafScanner's serial chunking does.
constexpr size_t kBatchChunk = 64;

// First-failure capture for a fan-out: workers poll Failed() (one relaxed
// load) at their run boundaries and bail; the first recorder wins and its
// typed Status survives the join. Take() is only called after every
// worker has joined, so the unsynchronized read of `status` is safe.
struct FirstError {
  std::atomic<bool> failed{false};
  std::mutex mu;
  Status status;

  void Record(Status st) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
      std::lock_guard<std::mutex> lock(mu);
      status = std::move(st);
    }
  }
  bool Failed() const { return failed.load(std::memory_order_relaxed); }
  Status Take() { return status; }
};
}  // namespace

struct ParallelLeafScanner::WorkerState {
  explicit WorkerState(size_t k) : answers(k) {}
  AnswerSet answers;
  QueryCounters counters;
  SharedBound* bound = nullptr;
  size_t evaluated = 0;
  std::vector<double> batch_out;  // scratch reused across chunks
};

ParallelLeafScanner::ParallelLeafScanner(
    std::span<const float> query, AnswerSet* answers, QueryCounters* counters,
    size_t num_threads, uint64_t pin_budget, size_t prefetch_depth,
    std::shared_ptr<CancellationToken> cancel, ThreadPool* pool)
    : query_(query),
      answers_(answers),
      counters_(counters),
      num_threads_(num_threads == 0 ? 1 : num_threads),
      pin_budget_(pin_budget),
      prefetch_depth_(prefetch_depth),
      cancel_(cancel),
      pool_(pool),
      serial_(query, answers, counters, prefetch_depth, std::move(cancel)),
      kernels_(ActiveKernels()) {
  if (pool_ == nullptr && num_threads_ > 1) pool_ = &ThreadPool::Global();
}

void ParallelLeafScanner::EvaluateOne(WorkerState* ws,
                                      std::span<const float> series,
                                      int64_t id) const {
  const double threshold =
      std::min(ws->answers.KthDistanceSq(), ws->bound->Load());
  bool abandoned = false;
  double d2 = kernels_.squared_euclidean_ea(query_.data(), series.data(),
                                            query_.size(), threshold,
                                            &abandoned);
  ++(abandoned ? ws->counters.abandoned_distances
               : ws->counters.full_distances);
  // Only completed, within-threshold distances may enter the local set:
  // everything skipped is provably outside the final top-k (invariant 1).
  if (!abandoned && d2 <= threshold) {
    if (ws->answers.Offer(d2, id) && ws->answers.full()) {
      ws->bound->RelaxTo(ws->answers.KthDistanceSq());
    }
  }
}

void ParallelLeafScanner::EvaluateBatch(WorkerState* ws, const float* block,
                                        size_t count, size_t stride,
                                        int64_t first_id) const {
  if (ws->batch_out.size() < std::min(count, kBatchChunk)) {
    ws->batch_out.resize(std::min(count, kBatchChunk));
  }
  for (size_t done = 0; done < count; done += kBatchChunk) {
    const size_t chunk = std::min(kBatchChunk, count - done);
    const double threshold =
        std::min(ws->answers.KthDistanceSq(), ws->bound->Load());
    size_t completed = kernels_.squared_euclidean_batch(
        query_.data(), query_.size(), block + done * stride, chunk, stride,
        threshold, ws->batch_out.data());
    ws->counters.full_distances += completed;
    ws->counters.abandoned_distances += chunk - completed;
    bool improved = false;
    for (size_t c = 0; c < chunk; ++c) {
      // out values > threshold are abandoned partials or completed losers;
      // either way they cannot be final answers and must stay out of the
      // local set (invariant 1).
      if (ws->batch_out[c] <= threshold) {
        improved |= ws->answers.Offer(
            ws->batch_out[c], first_id + static_cast<int64_t>(done + c));
      }
    }
    if (improved && ws->answers.full()) {
      ws->bound->RelaxTo(ws->answers.KthDistanceSq());
    }
  }
  ws->evaluated += count;
}

size_t ParallelLeafScanner::ProviderShards(SeriesProvider* provider,
                                           size_t count) const {
  if (!ParallelEligible(count) || provider == nullptr ||
      !provider->SupportsConcurrentReads()) {
    return 1;
  }
  uint64_t budget = provider->MaxConcurrentPins();
  if (pin_budget_ != 0) budget = std::min(budget, pin_budget_);
  return static_cast<size_t>(
      std::min<uint64_t>(num_threads_, std::max<uint64_t>(1, budget)));
}

size_t ParallelLeafScanner::RunSharded(
    size_t count, size_t shards,
    const std::function<void(WorkerState*, size_t, size_t)>& shard) {
  // The shared bound starts at the caller's current k-th distance: answers
  // accumulated by earlier leaves keep pruning inside this fan-out.
  SharedBound bound(answers_->KthDistanceSq());
  std::vector<WorkerState> workers;
  workers.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    workers.emplace_back(answers_->k());
    workers.back().bound = &bound;
  }

  {
    TaskGroup group(pool_);
    for (size_t i = 1; i < shards; ++i) {
      const size_t begin = count * i / shards;
      const size_t end = count * (i + 1) / shards;
      if (begin >= end) continue;
      group.Run([&shard, &workers, i, begin, end] {
        shard(&workers[i], begin, end);
      });
    }
    // Shard 0 runs here: the query thread is one of the shards.
    shard(&workers[0], 0, count / shards);
    group.Wait();  // rethrows the first worker exception
  }
  MergeWorkers(&workers);
  size_t evaluated = 0;
  for (const WorkerState& ws : workers) evaluated += ws.evaluated;
  return evaluated;
}

void ParallelLeafScanner::MergeWorkers(std::vector<WorkerState>* workers) {
  std::vector<std::pair<double, int64_t>> entries;
  for (WorkerState& ws : *workers) {
    if (counters_ != nullptr) *counters_ += ws.counters;
    std::vector<std::pair<double, int64_t>> taken = ws.answers.TakeEntries();
    entries.insert(entries.end(), taken.begin(), taken.end());
  }
  // Offer ascending by (distance, id): on exact distance ties the smaller
  // id wins, independent of which worker found it.
  std::sort(entries.begin(), entries.end());
  for (const auto& [dist_sq, id] : entries) answers_->Offer(dist_sq, id);
}

Result<size_t> ParallelLeafScanner::ScanIds(SeriesProvider* provider,
                                            std::span<const int64_t> ids) {
  const size_t shards = ProviderShards(provider, ids.size());
  if (shards <= 1) {
    return serial_.ScanIds(provider, ids);
  }
  const bool announce =
      prefetch_depth_ > 0 && provider->MaxPrefetchPages() > 0;
  const uint64_t spp = announce ? provider->SeriesPerPage() : 1;
  const size_t len = provider->series_length();
  // A failed fetch (or a fired cancellation token) poisons the whole scan
  // (see header): workers bail as soon as any shard fails, releasing
  // their RAII pins on the way out; the first typed status survives the
  // join and the query is abandoned by the caller, so which candidates
  // the other shards got to no longer matters.
  FirstError err;
  size_t evaluated = RunSharded(
      ids.size(), shards, [&](WorkerState* ws, size_t begin, size_t end) {
        // Each worker walks its shard run by run: isolated ids take the
        // single-candidate path, consecutive ids ride the batch kernel,
        // and the shard's upcoming runs are announced to the prefetcher
        // before the current one is evaluated.
        std::span<const int64_t> shard_ids = ids.subspan(begin, end - begin);
        // Re-announce once half the lookahead is consumed (see
        // LeafScanner::ScanIds for the rationale).
        const size_t announce_every =
            std::max<size_t>(1, prefetch_depth_ / 2);
        size_t runs_since_announce = announce_every;
        size_t start = 0;
        while (start < shard_ids.size()) {
          if (err.Failed()) return;
          // Cancellation point: one check per run, on every worker.
          if (cancel_ != nullptr) {
            Status cs = cancel_->Check();
            if (!cs.ok()) {
              err.Record(std::move(cs));
              return;
            }
          }
          const size_t stop = LeafScanner::RunEnd(shard_ids, start);
          if (announce && stop < shard_ids.size() &&
              ++runs_since_announce > announce_every) {
            LeafScanner::AnnounceRuns(provider, shard_ids, stop,
                                      prefetch_depth_, spp, &ws->counters,
                                      cancel_);
            runs_since_announce = 0;
          }
          if (stop - start == 1) {
            Result<PinnedRun> run = provider->PinSeriesChecked(
                static_cast<uint64_t>(shard_ids[start]), &ws->counters);
            if (!run.ok()) {
              err.Record(run.status());
              return;
            }
            EvaluateOne(ws, run.value().span(), shard_ids[start]);
            ++ws->evaluated;
          } else {
            uint64_t i = static_cast<uint64_t>(shard_ids[start]);
            const uint64_t run_end = i + (stop - start);
            while (i < run_end) {
              if (err.Failed()) return;
              Result<PinnedRun> run =
                  provider->PinRunChecked(i, run_end - i, &ws->counters);
              if (!run.ok()) {
                err.Record(run.status());
                return;
              }
              const size_t run_count = run.value().span().size() / len;
              EvaluateBatch(ws, run.value().span().data(), run_count, len,
                            static_cast<int64_t>(i));
              i += run_count;
            }
          }
          start = stop;
        }
      });
  if (err.Failed()) return err.Take();
  return evaluated;
}

size_t ParallelLeafScanner::ScanIds(const Dataset& data,
                                    std::span<const int64_t> ids) {
  if (!ParallelEligible(ids.size())) {
    return serial_.ScanIds(data, ids);
  }
  return RunSharded(ids.size(), num_threads_,
                    [&](WorkerState* ws, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      EvaluateOne(ws, data.series(static_cast<size_t>(ids[i])), ids[i]);
      ++ws->evaluated;
    }
  });
}

size_t ParallelLeafScanner::ScanContiguous(const float* block, size_t count,
                                           size_t stride, int64_t first_id) {
  if (!ParallelEligible(count)) {
    return serial_.ScanContiguous(block, count, stride, first_id);
  }
  return RunSharded(count, num_threads_,
                    [&](WorkerState* ws, size_t begin, size_t end) {
    EvaluateBatch(ws, block + begin * stride, end - begin, stride,
                  first_id + static_cast<int64_t>(begin));
  });
}

Result<size_t> ParallelLeafScanner::ScanRange(SeriesProvider* provider,
                                              uint64_t first, uint64_t count) {
  const size_t shards = ProviderShards(provider, static_cast<size_t>(count));
  if (shards <= 1) {
    return serial_.ScanRange(provider, first, count);
  }
  const uint64_t lookahead =
      prefetch_depth_ > 0 ? prefetch_depth_ * provider->SeriesPerPage() : 0;
  FirstError err;
  size_t evaluated = RunSharded(
      static_cast<size_t>(count), shards,
      [&](WorkerState* ws, size_t begin, size_t end) {
        const size_t len = provider->series_length();
        uint64_t i = first + begin;
        const uint64_t stop = first + end;
        // Re-announce once half the lookahead is consumed (see
        // LeafScanner::ScanRange for the rationale).
        uint64_t announce_at = i;
        while (i < stop) {
          if (err.Failed()) return;
          // Cancellation point: once per pinned page, on every worker.
          if (cancel_ != nullptr) {
            Status cs = cancel_->Check();
            if (!cs.ok()) {
              err.Record(std::move(cs));
              return;
            }
          }
          Result<PinnedRun> run =
              provider->PinRunChecked(i, stop - i, &ws->counters);
          if (!run.ok()) {
            err.Record(run.status());
            return;
          }
          const size_t run_count = run.value().span().size() / len;
          // Announce this shard's next window while the current pinned
          // page is evaluated below.
          const uint64_t next = i + run_count;
          if (lookahead > 0 && next < stop && next >= announce_at) {
            provider->Prefetch(next,
                               std::min<uint64_t>(lookahead, stop - next),
                               &ws->counters, cancel_);
            announce_at = next + std::max<uint64_t>(1, lookahead / 2);
          }
          EvaluateBatch(ws, run.value().span().data(), run_count, len,
                        static_cast<int64_t>(i));
          i += run_count;
        }
      });
  if (err.Failed()) return err.Take();
  return evaluated;
}

Result<size_t> ParallelLeafScanner::RefineOrdered(
    SeriesProvider* provider, size_t count,
    const std::function<int64_t(size_t)>& id_at,
    const std::function<bool(size_t)>& before,
    const std::function<bool(size_t)>& after) {
  const size_t shards = ProviderShards(provider, count);
  if (shards <= 1) {
    size_t committed = 0;
    for (size_t i = 0; i < count; ++i) {
      // Cancellation point: refinement commits one candidate at a time.
      if (cancel_ != nullptr) {
        HYDRA_RETURN_IF_ERROR(cancel_->Check());
      }
      if (!before(i)) break;
      HYDRA_ASSIGN_OR_RETURN(
          PinnedRun run,
          provider->PinSeriesChecked(static_cast<uint64_t>(id_at(i)),
                                     counters_));
      serial_.Scan(run.span(), id_at(i));
      run.Release();
      ++committed;
      if (!after(i)) break;
    }
    return committed;
  }

  enum : uint8_t { kCompleted = 0, kAbandoned = 1, kFailed = 2 };
  const size_t block = shards * kRefineGrain;
  std::vector<double> vals(block);
  std::vector<uint8_t> state(block);
  // The typed status behind each kFailed slot, reported when (and only
  // when) the commit loop actually reaches that candidate — speculative
  // failures past a stop point are discarded with the rest of the block.
  std::vector<Status> errors(block);
  // Per-worker I/O scratch: logical measures (series_accessed, distance
  // splits) are committed serially below and stay serial-identical, but
  // the physical I/O a speculative page load performs is real, so
  // bytes_read/random_ios are merged from these after each block.
  std::vector<QueryCounters> io(shards);
  size_t committed = 0;
  for (size_t base = 0; base < count; base += block) {
    // Cancellation point: once per speculative block, on the committing
    // thread — this is also what latches a deadline expiry so the
    // workers' cheap Fired() polls below observe it.
    if (cancel_ != nullptr) {
      HYDRA_RETURN_IF_ERROR(cancel_->Check());
    }
    const size_t b = std::min(block, count - base);
    // One threshold per block, read before any commit of the block: it is
    // the serial loop's threshold or looser, so abandons here imply serial
    // abandons and every serial keeper completes exactly (see header).
    const double t0 = answers_->KthDistanceSq();
    {
      TaskGroup group(pool_);
      auto evaluate = [&](size_t worker, size_t begin, size_t end) {
        for (size_t j = begin; j < end; ++j) {
          if (cancel_ != nullptr && cancel_->Fired()) {
            state[j] = kFailed;
            errors[j] = cancel_->Check();
            continue;
          }
          Result<PinnedRun> run = provider->PinSeriesChecked(
              static_cast<uint64_t>(id_at(base + j)), &io[worker]);
          if (!run.ok()) {
            state[j] = kFailed;
            errors[j] = run.status();
            continue;
          }
          bool abandoned = false;
          vals[j] = kernels_.squared_euclidean_ea(query_.data(),
                                                  run.value().span().data(),
                                                  query_.size(), t0,
                                                  &abandoned);
          state[j] = abandoned ? kAbandoned : kCompleted;
        }
      };
      for (size_t w = 1; w < shards; ++w) {
        const size_t begin = b * w / shards;
        const size_t end = b * (w + 1) / shards;
        if (begin >= end) continue;
        group.Run([&evaluate, w, begin, end] { evaluate(w, begin, end); });
      }
      evaluate(0, 0, b / shards);
      group.Wait();
    }
    if (counters_ != nullptr) {
      for (QueryCounters& w : io) {
        counters_->bytes_read += w.bytes_read;
        counters_->random_ios += w.random_ios;
        // Pool attribution is physical too: a speculative fetch really
        // hit or missed the pool (and may have consumed another query's
        // readahead), and the per-query fields must sum to the pool's
        // atomic totals (storage/buffer_manager.h).
        counters_->cache_hits += w.cache_hits;
        counters_->cache_misses += w.cache_misses;
        counters_->prefetch_issued += w.prefetch_issued;
        counters_->prefetch_useful += w.prefetch_useful;
        counters_->io_retries += w.io_retries;
        counters_->io_giveups += w.io_giveups;
        w.Reset();
      }
    }
    // Commit strictly in candidate order; speculative evaluations past a
    // stop point are discarded without touching answers or counters.
    for (size_t j = 0; j < b; ++j) {
      if (!before(base + j)) return committed;
      if (state[j] == kFailed) return errors[j];
      if (counters_ != nullptr) {
        ++counters_->series_accessed;
        ++(state[j] == kAbandoned ? counters_->abandoned_distances
                                  : counters_->full_distances);
      }
      answers_->Offer(vals[j], id_at(base + j));
      ++committed;
      if (!after(base + j)) return committed;
    }
  }
  return committed;
}

}  // namespace hydra
