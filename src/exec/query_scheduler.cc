#include "exec/query_scheduler.h"

#include <algorithm>
#include <utility>

#include "common/options.h"
#include "index/leaf_scanner.h"
#include "storage/buffer_manager.h"

namespace hydra {

size_t DefaultBatchWindow() {
  const size_t v = EnvOrSize("HYDRA_BATCH_WINDOW", 1);
  return v == 0 ? 1 : v;
}

QueryScheduler::QueryScheduler(const Index& index,
                               const ServingOptions& options)
    : index_(index),
      pool_(options.pool != nullptr ? options.pool : &ThreadPool::Global()),
      // The capability clamp lives here, on the shared mechanism: an
      // index whose Search mutates state (ADS+) must never see
      // overlapping calls no matter how the scheduler was constructed.
      max_in_flight_(index.capabilities().concurrent_queries
                         ? std::max<size_t>(1, options.concurrency)
                         : 1),
      queue_capacity_(options.queue_capacity != 0 ? options.queue_capacity
                                                  : 2 * max_in_flight_),
      // Coalescing requires batched_queries (the index can serve a
      // batch) AND concurrent_queries (its Search is stateless enough
      // that member queries may interleave): an ADS+-style adaptive
      // index is excluded even when a window was requested.
      batch_window_(index.capabilities().batched_queries &&
                            index.capabilities().concurrent_queries
                        ? std::max<size_t>(1, options.batch_window != 0
                                                  ? options.batch_window
                                                  : DefaultBatchWindow())
                        : 1),
      // Per-tenant cap: explicit option > HYDRA_TENANT_QUEUE > 0 (off).
      tenant_queue_capacity_(ResolveOptionSize(
          options.tenant_queue_capacity, "HYDRA_TENANT_QUEUE", 0)) {}

QueryScheduler::~QueryScheduler() {
  std::unique_lock<std::mutex> lock(mu_);
  finished_ = true;
  // Never-admitted queries are discarded: the consumer of their results
  // is the thread destroying the stream. Their tickets outlive the
  // scheduler (shared state), so each one is resolved to a TERMINAL
  // typed kUnavailable before being dropped — a front-end polling
  // ticket.done() must see every accepted query reach a final state, not
  // hang on "query pending" forever. Admitted tasks reference this
  // object, so the destructor must see them out — and so must any
  // producer still inside Submit (woken by the notify below): waiting on
  // submitters_ keeps the mutex/cvs alive until the last one left.
  for (auto& q : pending_) {
    for (const std::shared_ptr<Request>& req : q) {
      req->ticket->status = Status::Unavailable(
          "dropped submission: scheduler destroyed before admission");
      req->ticket->done.store(true, std::memory_order_release);
    }
    q.clear();
  }
  pending_count_ = 0;
  tenant_pending_.clear();
  space_cv_.notify_all();
  results_cv_.wait(lock,
                   [this] { return in_flight_ == 0 && submitters_ == 0; });
}

QueryTicket QueryScheduler::Submit(std::span<const float> query,
                                   const SearchParams& params,
                                   const SubmitOptions& submit) {
  std::shared_ptr<Request> req;
  std::shared_ptr<QueryTicket::State> state;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++submitters_;
    const auto admissible = [this, &submit] {
      if (pending_count_ >= queue_capacity_) return false;
      if (tenant_queue_capacity_ == 0) return true;
      // Tenant-local backpressure: a tenant at its cap parks here while
      // other tenants' submissions keep flowing past it.
      const auto it = tenant_pending_.find(submit.tenant);
      return it == tenant_pending_.end() ||
             it->second < tenant_queue_capacity_;
    };
    if (!admissible() && !finished_) {
      // Count only submitters actually parked on backpressure: tests
      // wait for blocked_submitters() to rise instead of sleeping and
      // hoping the producer thread got there.
      ++blocked_submitters_;
      space_cv_.wait(lock,
                     [this, &admissible] { return admissible() || finished_; });
      --blocked_submitters_;
    }
    --submitters_;
    if (finished_) {
      // Shutdown (or Finish) raced this submission: the query is
      // dropped, visibly — the returned ticket is !valid(). A waiting
      // destructor learns the last submitter is gone.
      if (submitters_ == 0) results_cv_.notify_all();
      return QueryTicket();
    }
    state = std::make_shared<QueryTicket::State>();
    state->id = next_ticket_++;
    state->tenant = submit.tenant;
    state->priority = submit.priority;
    state->status = Status::Unavailable("query pending");
    req = std::make_shared<Request>();
    req->ticket = state;
    req->query.assign(query.begin(), query.end());
    req->params = params;
    pending_[static_cast<size_t>(submit.priority)].push_back(req);
    ++pending_count_;
    if (tenant_queue_capacity_ != 0) ++tenant_pending_[submit.tenant];
    DispatchLocked();
  }
  return QueryTicket(std::move(state));
}

void QueryScheduler::DispatchLocked() {
  while (in_flight_ < max_in_flight_ && pending_count_ > 0) {
    // Strict-priority admission: always drain the highest non-empty
    // class (interactive > normal > background), FIFO within the class.
    // Starvation of lower classes under sustained higher-class load is
    // the intended policy — the per-tenant caps bound how much any one
    // tenant can keep stuffing into a class.
    auto& queue = [this]() -> std::deque<std::shared_ptr<Request>>& {
      for (size_t c = pending_.size(); c-- > 1;) {
        if (!pending_[c].empty()) return pending_[c];
      }
      return pending_[0];
    }();
    // Opportunistic coalescing: take whatever is ALREADY waiting in that
    // one class, up to the window — never wait for more to arrive, and
    // never mix classes in a batch. The batch fills ONE in-flight slot
    // (its execution holds pins like a single query; see
    // ServingOptions::batch_window), which is also what lets batches
    // form at all: completions free slots one at a time, so a window
    // gated on free slots would collapse to solo serving as soon as the
    // session saturates.
    const size_t take = std::min(batch_window_, queue.size());
    std::vector<std::shared_ptr<Request>> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      std::shared_ptr<Request> req = std::move(queue.front());
      queue.pop_front();
      --pending_count_;
      if (tenant_queue_capacity_ != 0) {
        const auto it = tenant_pending_.find(req->ticket->tenant);
        if (it != tenant_pending_.end() && --it->second == 0) {
          tenant_pending_.erase(it);
        }
      }
      batch.push_back(std::move(req));
      space_cv_.notify_all();
    }
    ++in_flight_;
    // The pool task holds the requests alive; completion re-enters
    // DispatchLocked, so admission needs no dispatcher thread.
    if (take == 1) {
      std::shared_ptr<Request> req = std::move(batch.front());
      pool_->Submit([this, req] { Serve(req); });
    } else {
      ++batches_served_;
      coalesced_queries_ += take;
      auto reqs = std::make_shared<std::vector<std::shared_ptr<Request>>>(
          std::move(batch));
      pool_->Submit([this, reqs] { ServeBatch(*reqs); });
    }
  }
}

void QueryScheduler::FileResultLocked(ServedQuery out) {
  // Publish the terminal status through the ticket handle first: status
  // is written, then done is released, so any thread that observes
  // done() == true reads the final status. The handle outlives the
  // scheduler (shared state), so a front-end can poll tickets after the
  // stream is gone.
  QueryTicket::State& state = *out.ticket.state_;
  state.status = out.answer.ok() ? Status::OK() : out.answer.status();
  state.done.store(true, std::memory_order_release);
  done_.emplace(state.id, std::move(out));
}

void QueryScheduler::Serve(const std::shared_ptr<Request>& req) {
  ServedQuery out;
  out.ticket = QueryTicket(req->ticket);
  // A deadline bounds the latency a CLIENT observes, so the budget is
  // measured from Submit — queue wait counts against it. Arm the token
  // here with whatever budget is left (not in Search's
  // ResolveCancellation, which would restart the clock at execution
  // time). A query whose budget the queue already consumed fails fast
  // without touching the index or the pool's pages.
  if (req->params.deadline_ms > 0 && req->params.cancel == nullptr) {
    const double waited_ms = req->submitted.ElapsedSeconds() * 1000.0;
    const double remaining_ms = req->params.deadline_ms - waited_ms;
    if (remaining_ms <= 0) {
      out.answer = Status::DeadlineExceeded(
          "query deadline expired in the submission queue");
      out.seconds = req->submitted.ElapsedSeconds();
      std::lock_guard<std::mutex> lock(mu_);
      FileResultLocked(std::move(out));
      --in_flight_;
      DispatchLocked();
      results_cv_.notify_all();
      return;
    }
    req->params.cancel = CancellationToken::WithDeadline(remaining_ms);
  }
  try {
    out.answer = index_.Search(
        std::span<const float>(req->query.data(), req->query.size()),
        req->params, &out.counters);
  } catch (const std::exception& e) {
    // No exception crosses the serving boundary: a throwing search (OOM
    // inside a scan fan-out) becomes a per-query error result.
    out.answer = Status::Internal(e.what());
  } catch (...) {
    out.answer = Status::Internal("unknown exception in Search");
  }
  out.seconds = req->submitted.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    FileResultLocked(std::move(out));
    --in_flight_;
    DispatchLocked();
    // Notified under the lock on purpose: the destructor destroys the cv
    // as soon as it observes in_flight_ == 0, which it can only do after
    // this critical section — a notify after unlock could still be
    // touching the cv then.
    results_cv_.notify_all();
  }
}

void QueryScheduler::ServeBatch(
    const std::vector<std::shared_ptr<Request>>& reqs) {
  const size_t n = reqs.size();
  std::vector<ServedQuery> outs(n);
  // Members that actually join the index call. A member whose deadline
  // the queue already consumed degrades ALONE — it gets its typed
  // DeadlineExceeded without costing the index a look, and the rest of
  // the batch proceeds (same per-query deadline semantics as Serve).
  std::vector<size_t> live;
  live.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Request& req = *reqs[i];
    outs[i].ticket = QueryTicket(req.ticket);
    if (req.params.deadline_ms > 0 && req.params.cancel == nullptr) {
      const double waited_ms = req.submitted.ElapsedSeconds() * 1000.0;
      const double remaining_ms = req.params.deadline_ms - waited_ms;
      if (remaining_ms <= 0) {
        outs[i].answer = Status::DeadlineExceeded(
            "query deadline expired in the submission queue");
        outs[i].seconds = req.submitted.ElapsedSeconds();
        continue;
      }
      req.params.cancel = CancellationToken::WithDeadline(remaining_ms);
    }
    live.push_back(i);
  }
  if (!live.empty()) {
    std::vector<BatchQuery> batch;
    batch.reserve(live.size());
    for (size_t i : live) {
      batch.push_back(BatchQuery{
          std::span<const float>(reqs[i]->query.data(),
                                 reqs[i]->query.size()),
          reqs[i]->params, &outs[i].counters});
    }
    try {
      std::vector<Result<KnnAnswer>> answers =
          index_.BatchSearch(std::span<const BatchQuery>(batch));
      if (answers.size() != batch.size()) {
        for (size_t i : live) {
          outs[i].answer =
              Status::Internal("BatchSearch result count mismatch");
        }
      } else {
        for (size_t m = 0; m < live.size(); ++m) {
          outs[live[m]].answer = std::move(answers[m]);
        }
      }
    } catch (const std::exception& e) {
      // No exception crosses the serving boundary (see Serve). A
      // throwing batch fails its members as typed errors; deadline
      // expiries already filed above are untouched.
      for (size_t i : live) outs[i].answer = Status::Internal(e.what());
    } catch (...) {
      for (size_t i : live) {
        outs[i].answer = Status::Internal("unknown exception in BatchSearch");
      }
    }
    for (size_t i : live) {
      outs[i].seconds = reqs[i]->submitted.ElapsedSeconds();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      FileResultLocked(std::move(outs[i]));
    }
    --in_flight_;  // the whole batch held one slot
    DispatchLocked();
    // Under the lock for the same destructor-lifetime reason as Serve.
    results_cv_.notify_all();
  }
}

std::optional<ServedQuery> QueryScheduler::Next() {
  std::unique_lock<std::mutex> lock(mu_);
  results_cv_.wait(lock, [this] {
    return done_.count(next_result_) != 0 ||
           (finished_ && next_result_ >= next_ticket_);
  });
  auto it = done_.find(next_result_);
  if (it == done_.end()) return std::nullopt;  // drained
  ServedQuery out = std::move(it->second);
  done_.erase(it);
  ++next_result_;
  return out;
}

void QueryScheduler::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  finished_ = true;
  space_cv_.notify_all();
  results_cv_.notify_all();  // under the lock: see Serve()
}

size_t QueryScheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

size_t QueryScheduler::blocked_submitters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocked_submitters_;
}

uint64_t QueryScheduler::batches_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_served_;
}

uint64_t QueryScheduler::coalesced_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_queries_;
}

namespace {
const std::string& EmptyTenant() {
  static const std::string empty;
  return empty;
}
}  // namespace

uint64_t QueryTicket::id() const {
  return state_ != nullptr ? state_->id : QueryScheduler::kDropped;
}

const std::string& QueryTicket::tenant() const {
  return state_ != nullptr ? state_->tenant : EmptyTenant();
}

QueryPriority QueryTicket::priority() const {
  return state_ != nullptr ? state_->priority : QueryPriority::kNormal;
}

bool QueryTicket::done() const {
  return state_ != nullptr && state_->done.load(std::memory_order_acquire);
}

Status QueryTicket::status() const {
  if (state_ == nullptr) {
    return Status::Unavailable("dropped submission: no result will appear");
  }
  if (!state_->done.load(std::memory_order_acquire)) {
    return Status::Unavailable("query pending");
  }
  return state_->status;
}

ServingOptions ServingSession::NegotiateOptions(SeriesProvider* provider,
                                                ServingOptions options) {
  // (The concurrent_queries capability clamp is QueryScheduler's own
  // job; only the storage negotiation happens here.)
  if (provider != nullptr) {
    const uint64_t pins = provider->MaxConcurrentPins();
    // Admission itself is clamped to the pin capacity: more in-flight
    // queries than pages would let the per-query floor of one pin
    // overcommit the pool and starve fetches — the very failure the
    // budget split exists to rule out. Excess queries simply queue.
    if (pins != UINT64_MAX && options.concurrency > pins) {
      options.concurrency = static_cast<size_t>(pins);
    }
  }
  return options;
}

ServingSession::ServingSession(const Index& index, SeriesProvider* provider,
                               ServingOptions options)
    : scheduler_(index, NegotiateOptions(provider, options)) {
  if (provider != nullptr) {
    const uint64_t pins = provider->MaxConcurrentPins();
    if (pins != UINT64_MAX) {
      // The negotiation: split the pool's pin capacity evenly across the
      // admitted queries (concurrency <= pins after the clamp above, so
      // the combined demand of N queries is N * (pins / N) <= pins and
      // overlapping queries can never starve each other of pins).
      // Configuration-only, so every query of a session sees the same
      // budget.
      per_query_pin_budget_ =
          std::max<uint64_t>(1, pins / scheduler_.concurrency());
    }
    // The readahead carve-out is shared the same way. Floored at one
    // page: the pool's own budget gate (storage/buffer_manager.h) is the
    // hard bound, the per-query depth only paces how far ahead each
    // query announces.
    const uint64_t prefetch_pages = provider->MaxPrefetchPages();
    if (prefetch_pages > 0) {
      per_query_prefetch_budget_ =
          std::max<uint64_t>(1, prefetch_pages / scheduler_.concurrency());
    }
  }
}

QueryTicket ServingSession::Submit(std::span<const float> query,
                                   const SearchParams& caller_params,
                                   const SubmitOptions& submit) {
  SearchParams params = caller_params;
  params.concurrency = scheduler_.concurrency();
  if (per_query_pin_budget_ != 0) {
    params.pin_budget = params.pin_budget == 0
                            ? per_query_pin_budget_
                            : std::min(params.pin_budget,
                                       per_query_pin_budget_);
  }
  // Clamp the query's effective readahead (explicit depth or the
  // HYDRA_PREFETCH default) to its share of the pool's prefetch budget.
  // Resolved here so the clamp also binds env-driven depths; a depth of 0
  // (prefetch off) stays 0.
  if (per_query_prefetch_budget_ != 0) {
    const size_t resolved = ResolvePrefetchDepth(params);
    if (resolved != 0) {
      params.prefetch_depth = static_cast<size_t>(std::min<uint64_t>(
          resolved, per_query_prefetch_budget_));
    }
  }
  return scheduler_.Submit(query, params, submit);
}

ServingStats ServingSession::stats() const {
  ServingStats s;
  s.concurrency = scheduler_.concurrency();
  s.queue_capacity = scheduler_.queue_capacity();
  s.batch_window = scheduler_.batch_window();
  s.batches_served = scheduler_.batches_served();
  s.coalesced_queries = scheduler_.coalesced_queries();
  s.per_query_pin_budget = per_query_pin_budget_;
  s.per_query_prefetch_budget = per_query_prefetch_budget_;
  s.in_flight = scheduler_.in_flight();
  return s;
}

}  // namespace hydra
