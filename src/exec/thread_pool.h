#ifndef HYDRA_EXEC_THREAD_POOL_H_
#define HYDRA_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hydra {

// Work-stealing thread pool behind every parallel query path (see
// exec/parallel_scanner.h). One deque per worker: a worker pops its own
// queue from the front and, when empty, steals from the back of the other
// queues, so a queue loaded with skewed work drains across the whole pool.
//
// Thread safety: Submit/SubmitTo may be called from any thread, including
// from inside a running task. The destructor drains every queued task and
// then joins the workers; tasks submitted during shutdown still run.
// Tasks must not block waiting for other tasks of the same pool (the pool
// has no nesting-aware scheduler); TaskGroup callers instead run a share
// of the work on their own thread.
class ThreadPool {
 public:
  // Spawns max(1, num_threads) workers.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Enqueues a task on the next queue, round-robin.
  void Submit(std::function<void()> task);

  // Enqueues a task on a specific worker's queue (tests use this to force
  // skew; the task may still be stolen by any idle worker).
  void SubmitTo(size_t worker, std::function<void()> task);

  // Process-wide pool shared by every query. Sized once, on first use, to
  // HYDRA_THREADS if set, else std::thread::hardware_concurrency().
  // SearchParams::num_threads shards work independently of this size, so
  // query results never depend on how many workers exist.
  static ThreadPool& Global();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  // Pops own queue front, else steals another queue's back. Returns an
  // empty function when every queue is empty.
  std::function<void()> TryPop(size_t self);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;

  // wake_mu_ guards stop_ and pairs with wake_cv_; pending_ counts queued
  // tasks and is only advanced before the matching notify, so a worker
  // that checks it under wake_mu_ cannot miss a wakeup.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  size_t pending_ = 0;
  size_t next_ = 0;
};

// Tracks a batch of tasks submitted to a pool and lets the caller block
// until all of them finished. The first exception thrown by any task is
// captured and rethrown from Wait() (the remaining tasks still run to
// completion, so the pool is left clean).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  // Blocks until every task finished, like Wait(), but never throws: a
  // captured exception that Wait() was not called for is dropped (a
  // rethrow from a destructor would std::terminate). Call Wait() before
  // destruction when task failures must be observed.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> task);
  // Skew-aware variant routed to one worker's queue (see SubmitTo).
  void RunOn(size_t worker, std::function<void()> task);

  // Blocks until every Run() task completed; rethrows the first captured
  // exception. Safe to call repeatedly (later calls return immediately).
  void Wait();

 private:
  std::function<void()> Wrap(std::function<void()> task);

  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace hydra

#endif  // HYDRA_EXEC_THREAD_POOL_H_
