#ifndef HYDRA_EXEC_THREAD_POOL_H_
#define HYDRA_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace hydra {

// Work-stealing thread pool behind every parallel query path (see
// exec/parallel_scanner.h). One deque per worker: a worker pops its own
// queue from the front and, when empty, steals from the back of the other
// queues, so a queue loaded with skewed work drains across the whole pool.
//
// Thread safety: Submit/SubmitTo may be called from any thread, including
// from inside a running task. The destructor drains every queued task and
// then joins the workers; tasks submitted during shutdown still run.
// Tasks MAY block waiting for other tasks of the same pool through
// TaskGroup::Wait: the wait helps — it pops and runs queued tasks OF ITS
// OWN GROUP on the waiting thread until the group drains — so nested
// fan-outs (a whole-query task that internally shards its leaf scans,
// see exec/query_scheduler.h) cannot deadlock even a one-worker pool.
class ThreadPool {
 public:
  // Spawns max(1, num_threads) workers.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Enqueues a task on the next queue, round-robin. `tag` identifies the
  // submitter's task group for targeted helping (see TryRunOne); nullptr
  // = untagged.
  void Submit(std::function<void()> task, const void* tag = nullptr);

  // Enqueues a task on a specific worker's queue (tests use this to force
  // skew; the task may still be stolen by any idle worker).
  void SubmitTo(size_t worker, std::function<void()> task,
                const void* tag = nullptr);

  // Pops one queued task and runs it on the calling thread; false when
  // nothing eligible was queued at the scan. With a tag, only tasks
  // submitted under that tag are eligible — the helping primitive behind
  // TaskGroup::Wait, which must run its OWN shards while waiting, not an
  // arbitrary queued task (inlining, say, a whole other serving query
  // would bloat the waiter's latency by that query's full runtime).
  // With tag == nullptr any task is eligible (generic cycle donation).
  bool TryRunOne(const void* tag = nullptr);

  // Process-wide pool shared by every query. Sized once, on first use, to
  // HYDRA_THREADS if set, else std::thread::hardware_concurrency().
  // SearchParams::num_threads shards work independently of this size, so
  // query results never depend on how many workers exist.
  static ThreadPool& Global();

 private:
  struct Queue {
    std::mutex mu;
    // Each task carries its submitter's helping tag (nullptr: untagged).
    std::deque<std::pair<std::function<void()>, const void*>> tasks;
  };

  void WorkerLoop(size_t self);
  // Pops own queue front, else steals another queue's back. Returns an
  // empty function when every queue is empty.
  std::function<void()> TryPop(size_t self);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;

  // wake_mu_ guards stop_ and pairs with wake_cv_; pending_ counts queued
  // tasks and is only advanced before the matching notify, so a worker
  // that checks it under wake_mu_ cannot miss a wakeup.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  size_t pending_ = 0;
  size_t next_ = 0;
};

// Tracks a batch of tasks submitted to a pool and lets the caller block
// until all of them finished. The first exception thrown by any task is
// captured and rethrown from Wait() (the remaining tasks still run to
// completion, so the pool is left clean).
//
// Waiting helps: while its tasks are pending, the waiter runs queued
// tasks OF THIS GROUP (ThreadPool::TryRunOne with the group as tag)
// instead of sleeping, and only blocks once none of its tasks are queued
// — at which point the remainder are mid-execution on workers and
// completion is guaranteed. This makes nested waits (a pool task waiting
// on its own subtasks) deadlock-free: a group's pending tasks are always
// either queued under its tag (the waiter runs them) or running (their
// completion notifies), never parked behind the waiter. Restricting help
// to the own group also keeps the waiter's latency its own — it can
// never get stuck inlining an unrelated long task (e.g. a whole other
// serving query) that happened to be queued.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  // Blocks until every task finished, like Wait(), but never throws: a
  // captured exception that Wait() was not called for is dropped (a
  // rethrow from a destructor would std::terminate). Call Wait() before
  // destruction when task failures must be observed.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> task);
  // Skew-aware variant routed to one worker's queue (see SubmitTo).
  void RunOn(size_t worker, std::function<void()> task);

  // Blocks until every Run() task completed; rethrows the first captured
  // exception. Safe to call repeatedly (later calls return immediately).
  void Wait();

 private:
  std::function<void()> Wrap(std::function<void()> task);
  // The helping drain shared by Wait() and the destructor: runs queued
  // pool tasks until pending_ reaches 0, then returns (without touching
  // first_error_).
  void HelpUntilDrained();

  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace hydra

#endif  // HYDRA_EXEC_THREAD_POOL_H_
