#ifndef HYDRA_EXEC_QUERY_SCHEDULER_H_
#define HYDRA_EXEC_QUERY_SCHEDULER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/status.h"
#include "common/timer.h"
#include "exec/serving_backend.h"
#include "exec/thread_pool.h"
#include "index/index.h"

namespace hydra {

class SeriesProvider;  // storage/buffer_manager.h

// Inter-query concurrency: the serving engine that overlaps WHOLE queries
// on the shared worker pool, where the rest of src/exec/ parallelizes the
// inside of one query. The paper's harness runs queries one at a time; a
// production store is judged on throughput under concurrent access, so
// this layer turns the same indexes into a serving system without
// touching them — a query is an opaque unit above the per-query scan
// engine.
//
// Determinism argument (docs/ARCHITECTURE.md "Serving" has the long
// form): every query owns its AnswerSet, QueryCounters and scanner; the
// only state shared between in-flight queries is (a) the ThreadPool,
// whose scheduling never affects answers (work is sharded by
// SearchParams::num_threads alone), and (b) the buffer pool, which is a
// content-addressed cache — a page's bytes are the same no matter which
// query faulted it in — with pin-stable spans. Hence the answer to each
// query is identical at every concurrency level, including 1; only
// timing and cache hit/miss attribution shift. Tests/serving_test.cc
// asserts exactly this.
//
// The client-facing types (QueryPriority, SubmitOptions, QueryTicket,
// ServedQuery, ServingStats) and the ServingBackend interface this
// engine serves live in exec/serving_backend.h — the remote HydraClient
// (net/client.h) implements the same surface.

struct ServingOptions {
  // Queries admitted onto the pool at once. Clamped to 1 when the index
  // does not serve concurrent queries (IndexCapabilities).
  size_t concurrency = 1;
  // Bounded submission queue: Submit() blocks (backpressure) while this
  // many queries are waiting for admission. 0 = 2 * concurrency.
  size_t queue_capacity = 0;
  // Worker pool the whole-query tasks run on; nullptr = the process-wide
  // ThreadPool::Global(). Intra-query fan-outs of an admitted query run
  // on the same pool (TaskGroup::Wait helps, so nesting cannot deadlock).
  ThreadPool* pool = nullptr;
  // Opportunistic coalescing: when admission finds several queries
  // waiting, up to this many are popped together into one
  // Index::BatchSearch call (one pass over the shared pages instead of
  // one per query). 0 = the HYDRA_BATCH_WINDOW env default (itself 1 =
  // batching off). Clamped to 1 unless the index declares BOTH
  // batched_queries and concurrent_queries (an ADS+-style index whose
  // Search mutates state is never coalesced). The window is a bound, not
  // a quota: a lone queued query is served solo immediately — coalescing
  // never waits for stragglers, so an idle stream keeps solo latency.
  // A coalesced batch occupies ONE in-flight slot: it executes as a
  // single task whose pin-holding phases are shared or member-serial
  // (the shared scan pins at most one run at a time, tree co-traversal
  // pins like one search, VA+file refines members one at a time), so its
  // instantaneous pin demand is bounded by a single query's budget and
  // the pin-capacity admission clamp stays sound. Batching therefore
  // RAISES the number of queries in flight (up to concurrency *
  // batch_window) without raising pin demand — that is the throughput
  // win.
  size_t batch_window = 0;
  // Per-tenant admission isolation: at most this many queries of ONE
  // tenant may sit in the submission queue; a tenant at its cap blocks in
  // Submit (tenant-local backpressure) while other tenants keep being
  // admitted — one flooding tenant can no longer occupy the whole shared
  // queue. 0 = the HYDRA_TENANT_QUEUE env default (itself 0 = no
  // per-tenant bound, the shared queue_capacity alone applies).
  size_t tenant_queue_capacity = 0;
};

// The HYDRA_BATCH_WINDOW resolution used when ServingOptions::batch_window
// is 0: the env value if set to a positive integer, else 1 (off).
size_t DefaultBatchWindow();

// Bounded-admission scheduler: a submission queue in front of N in-flight
// whole-query tasks on the ThreadPool, with a completion stream that
// hands results back in submission order regardless of completion order
// — serving output is deterministic even though execution overlaps.
//
// Thread safety: Submit/Next/Finish may be called from any threads
// (typically one producer and one consumer). The destructor drains the
// queries already admitted (their tasks reference this object), discards
// never-admitted pending queries, wakes producers blocked in Submit
// (their submissions are dropped), and waits until the last of them has
// left before tearing down.
class QueryScheduler {
 public:
  QueryScheduler(const Index& index, const ServingOptions& options);
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  // No-ticket id sentinel: QueryTicket::id() of an invalid ticket (the
  // query was NOT accepted — Finish() or the destructor raced the
  // submission while it was blocked on backpressure). Never a valid id.
  static constexpr uint64_t kDropped = UINT64_MAX;

  // Enqueues one query (the span is copied; the caller's buffer is free
  // immediately). Blocks while the submission queue is full — and, when a
  // per-tenant cap is configured, while this submission's tenant is at
  // its cap. Returns the query's ticket — results come back from Next()
  // in ticket-id order — or an invalid ticket (!valid(), id() ==
  // kDropped) when the stream was closed before the query could be
  // accepted (the query is discarded; no result will appear for it).
  // Calling Submit after — or racing — Finish() is a supported contract:
  // the submission is refused promptly with the invalid ticket (typed
  // kUnavailable status), never blocked forever on backpressure; a
  // producer already parked on a full queue when Finish lands is woken
  // and refused the same way. A network front-end leans on this: a
  // disconnecting client's session can be finished while its submitter
  // thread is still mid-Submit.
  QueryTicket Submit(std::span<const float> query, const SearchParams& params,
                     const SubmitOptions& submit = {});

  // Blocks for the result of the next ticket in submission order;
  // nullopt once Finish() was called and every submitted query was
  // consumed.
  std::optional<ServedQuery> Next();

  // Declares the submission stream closed so Next() can drain to
  // nullopt. Idempotent.
  void Finish();

  // Admitted-but-not-completed queries right now (for tests/monitoring;
  // racy by nature).
  size_t in_flight() const;
  // Producers currently parked inside Submit on backpressure. Lets tests
  // wait for "the producer has actually blocked" as an observable event
  // instead of sleeping an arbitrary interval.
  size_t blocked_submitters() const;
  size_t concurrency() const { return max_in_flight_; }
  size_t queue_capacity() const { return queue_capacity_; }
  // Effective per-tenant pending cap (0 = off).
  size_t tenant_queue_capacity() const { return tenant_queue_capacity_; }
  // Effective coalescing window after the capability clamp (1 = off).
  size_t batch_window() const { return batch_window_; }
  // Coalescing observability: BatchSearch calls issued (size >= 2 only)
  // and the total queries they carried. A deterministic test can assert
  // coalesced_queries() > 0 by stuffing the queue before serving starts.
  uint64_t batches_served() const;
  uint64_t coalesced_queries() const;

 private:
  struct Request {
    std::shared_ptr<QueryTicket::State> ticket;
    std::vector<float> query;
    SearchParams params;
    Timer submitted;  // starts at Submit()
  };

  // Admits pending queries while in-flight slots are free, always from
  // the highest-priority non-empty class, coalescing up to batch_window_
  // waiting queries OF THAT CLASS into one pool task (classes never mix
  // in a batch, so a background flood cannot ride along with an
  // interactive admission). Called with mu_ held, from Submit and from
  // every completion (direct handoff: no dispatcher thread exists).
  void DispatchLocked();
  // Files one completed query under mu_: publishes the terminal status
  // through the ticket (release-ordered), moves the result into the
  // completion map and wakes the consumer.
  void FileResultLocked(ServedQuery out);
  // Runs one query on the pool and files its result.
  void Serve(const std::shared_ptr<Request>& req);
  // Runs a coalesced batch (size >= 2) through Index::BatchSearch and
  // files every member's result by ticket. Deadlines are armed per
  // member from ITS OWN Submit time; a member whose budget the queue
  // already consumed fails fast and never joins the index call. The
  // batch holds one in-flight slot (see ServingOptions::batch_window),
  // released at the end.
  void ServeBatch(const std::vector<std::shared_ptr<Request>>& reqs);

  const Index& index_;
  ThreadPool* pool_;
  size_t max_in_flight_;
  size_t queue_capacity_;
  size_t batch_window_;
  size_t tenant_queue_capacity_;

  mutable std::mutex mu_;
  std::condition_variable space_cv_;    // submitters: queue has room
  std::condition_variable results_cv_;  // consumer + dtor: results/idle
  // One FIFO per priority class, indexed by QueryPriority; admission
  // drains the highest non-empty class first, FIFO within a class.
  std::array<std::deque<std::shared_ptr<Request>>, 3> pending_;
  size_t pending_count_ = 0;  // sum over the classes
  // Pending queries per tenant (entries erased at zero), only maintained
  // when tenant_queue_capacity_ > 0.
  std::map<std::string, size_t> tenant_pending_;
  std::map<uint64_t, ServedQuery> done_;  // completed, unconsumed
  uint64_t next_ticket_ = 0;
  uint64_t next_result_ = 0;
  size_t in_flight_ = 0;
  // Producers currently inside Submit (blocked or not): the destructor
  // waits them out so a woken submitter never touches freed state.
  size_t submitters_ = 0;
  // The subset of submitters_ parked on the backpressure wait.
  size_t blocked_submitters_ = 0;
  bool finished_ = false;
  // Coalescing stats (guarded by mu_).
  uint64_t batches_served_ = 0;
  uint64_t coalesced_queries_ = 0;
};

// Binds a scheduler to one index + the shared storage it serves from and
// negotiates the per-query resource split: admission is clamped to the
// provider's pin capacity (never more in-flight queries than pages —
// excess queries just queue), and each admitted query gets a pin budget
// of MaxConcurrentPins() / concurrency, which the scan layers clamp
// their provider-backed fan-outs to. The readahead budget is split the
// same way: a query's effective prefetch_depth (explicit, or the
// HYDRA_PREFETCH default) is clamped to MaxPrefetchPages() / concurrency
// so overlapping queries share the pool's prefetch carve-out instead of
// fighting over it. All splits depend only on configuration (pool
// capacity, concurrency level), never on timing, so answers stay
// deterministic — and the combined demand of N in-flight queries is
// N * (capacity / N) <= capacity: overlapping queries can never starve
// each other of buffer-pool pins. This is the in-process ServingBackend
// — the object the harness serving mode (RunServingSweep),
// bench_serving, and HydraServer's per-connection sessions drive.
class ServingSession : public ServingBackend {
 public:
  // `provider` is the storage the index searches over (nullptr for
  // indexes that own their data): only its MaxConcurrentPins() is read.
  ServingSession(const Index& index, SeriesProvider* provider,
                 ServingOptions options);

  // Applies the session's pin budget (and records the concurrency level
  // in params for downstream reporting), then submits. `submit` carries
  // the tenant/priority routing; the default is the single-tenant,
  // normal-priority behavior.
  QueryTicket Submit(std::span<const float> query, const SearchParams& params,
                     const SubmitOptions& submit = {}) override;

  std::optional<ServedQuery> Next() override { return scheduler_.Next(); }
  void Finish() override { scheduler_.Finish(); }
  ServingStats stats() const override;

  // Effective values after capability clamping / budget negotiation.
  size_t concurrency() const { return scheduler_.concurrency(); }
  size_t blocked_submitters() const {
    return scheduler_.blocked_submitters();
  }
  size_t batch_window() const { return scheduler_.batch_window(); }
  uint64_t batches_served() const { return scheduler_.batches_served(); }
  uint64_t coalesced_queries() const {
    return scheduler_.coalesced_queries();
  }
  uint64_t per_query_pin_budget() const { return per_query_pin_budget_; }
  // Per-query readahead cap (pages); 0 = the provider does not prefetch.
  uint64_t per_query_prefetch_budget() const {
    return per_query_prefetch_budget_;
  }

 private:
  static ServingOptions NegotiateOptions(SeriesProvider* provider,
                                         ServingOptions options);

  uint64_t per_query_pin_budget_ = 0;       // 0 = unconstrained provider
  uint64_t per_query_prefetch_budget_ = 0;  // 0 = no prefetch support
  QueryScheduler scheduler_;
};

}  // namespace hydra

#endif  // HYDRA_EXEC_QUERY_SCHEDULER_H_
