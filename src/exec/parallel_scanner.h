#ifndef HYDRA_EXEC_PARALLEL_SCANNER_H_
#define HYDRA_EXEC_PARALLEL_SCANNER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/counters.h"
#include "common/status.h"
#include "core/dataset.h"
#include "distance/simd_dispatch.h"
#include "exec/shared_bound.h"
#include "exec/thread_pool.h"
#include "index/answer_set.h"
#include "index/leaf_scanner.h"
#include "storage/buffer_manager.h"

namespace hydra {

// Drop-in superset of LeafScanner (index/leaf_scanner.h) that fans
// candidate id ranges out across the worker pool. Every index's leaf or
// candidate scan routes through this class; SearchParams::num_threads
// picks the shard count.
//
// Determinism contract: for a fixed num_threads the result is fully
// deterministic, and for exact evaluation the surviving answers are
// IDENTICAL to num_threads=1 (same ids, bit-identical distances),
// because completed kernel evaluations do not depend on the abandon
// threshold and every candidate the serial scan would keep is provably
// completed and kept here too. Work is sharded by num_threads alone —
// never by pool size or timing — so the same call gives the same answer
// on any machine. Only the full/abandoned counter split may differ from
// the serial scan (stale thresholds abandon later). One scoped caveat:
// when distinct candidates tie EXACTLY (same double) at the k-th
// boundary, the parallel merge keeps the smallest id while the serial
// scan keeps whichever it offered first — distances returned are still
// identical, and ties are measure-zero on continuous data.
//
// Parallel evaluation keeps three invariants the correctness argument
// rests on (docs/ARCHITECTURE.md spells out the proof):
//  1. per-worker answer sets only ever hold completed, exact distances
//     (abandoned partial sums are discarded, never offered);
//  2. a worker's abandon threshold is min(own k-th, shared bound), both
//     of which upper-bound the final global k-th distance;
//  3. per-worker counters merge into the caller's after the join, so no
//     QueryCounters instance is ever written concurrently.
//
// A call returns with `answers` and `counters` fully merged; parallelism
// never escapes the call. Calls fall back to the serial LeafScanner when
// num_threads <= 1, the candidate count is too small to pay for the
// fan-out, or a provider-backed scan lacks SupportsConcurrentReads().
//
// Provider-backed scans fetch through the pin-handle API
// (SeriesProvider::PinSeries/PinRun): each worker pins at most one page
// at a time, for exactly the duration of one evaluation, so spans stay
// valid under concurrent eviction. To guarantee every worker can always
// hold its one pin, a provider-backed fan-out is additionally clamped to
// SeriesProvider::MaxConcurrentPins() shards (a bounded buffer pool
// reports its page capacity; in-memory providers are unlimited) and to
// the query's `pin_budget` (SearchParams::pin_budget: the serving engine
// splits a shared pool's pin capacity across concurrent queries; 0 = no
// per-query cap). Both clamps depend only on configuration — never on
// timing — and exact answers are identical at every shard count anyway,
// so the determinism contract is unaffected.
//
// Error contract: provider-backed ScanIds/ScanRange/RefineOrdered return
// the provider's typed Status when any fetch fails — DataCorruption for
// a checksum mismatch, IoError for a read error that survived its
// retries, Unavailable for a pool whose every page is pinned beyond the
// admission retries — instead of silently skipping candidates (a skipped
// candidate could be a true neighbor). The FIRST failure wins: workers
// observe a shared flag and bail, their pins are released on the way out
// (PinnedRun is RAII and each worker holds at most one), and the join
// then reports that first typed status. Answers offered before the
// failure remain in the caller's set; callers are expected to abandon
// the query on error.
//
// Cancellation: when a token is supplied, every worker checks it at its
// run/page boundaries and the scan returns DeadlineExceeded/Cancelled
// the same way — first verdict wins, all pins released, announced
// prefetches skipped by the pool's workers once the token has fired.
class ParallelLeafScanner {
 public:
  // `pool` defaults to ThreadPool::Global(). The calling thread runs
  // shard 0 itself, so a query only ever blocks on num_threads-1 workers.
  // `prefetch_depth` is the readahead lookahead in pages (0 = off): each
  // shard announces the next run(s) of its id stream to the provider's
  // background prefetcher before evaluating the current pinned run (see
  // index/leaf_scanner.h) — a pure cache hint, so the determinism
  // contract above is unaffected at every depth. `cancel` is the query's
  // cooperative cancellation token (null = not cancellable).
  ParallelLeafScanner(std::span<const float> query, AnswerSet* answers,
                      QueryCounters* counters, size_t num_threads,
                      uint64_t pin_budget = 0, size_t prefetch_depth = 0,
                      std::shared_ptr<CancellationToken> cancel = nullptr,
                      ThreadPool* pool = nullptr);

  // --- serial single-candidate paths, delegated to LeafScanner ---
  void Scan(std::span<const float> series, int64_t id) {
    serial_.Scan(series, id);
  }
  bool ScanFrom(SeriesProvider* provider, int64_t id) {
    return serial_.ScanFrom(provider, id);
  }

  // --- batched paths; parallel when eligible, else serial ---
  Result<size_t> ScanIds(SeriesProvider* provider,
                         std::span<const int64_t> ids);
  size_t ScanIds(const Dataset& data, std::span<const int64_t> ids);
  size_t ScanContiguous(const float* block, size_t count, size_t stride,
                        int64_t first_id);
  Result<size_t> ScanRange(SeriesProvider* provider, uint64_t first,
                           uint64_t count);

  // Ordered refinement for the candidate-list methods (VA+file, SRS):
  // reproduces the serial loop
  //
  //   for i in [0, count):
  //     if (!before(i)) stop;
  //     evaluate id_at(i), offer to the answer set;
  //     if (!after(i)) stop;
  //
  // exactly — `before`/`after` observe the answer set with candidates
  // 0..i-1 (resp. 0..i) applied, so adaptive stopping rules (lower-bound
  // cutoffs, chi-squared termination, delta-radius stops) decide on the
  // same state as at num_threads=1 — while evaluating upcoming candidates
  // speculatively in parallel blocks. Speculative evaluations past a stop
  // point are discarded and uncounted: the logical counters
  // (series_accessed, distance splits) reflect committed candidates only,
  // keeping series_accessed identical to serial. Physical I/O
  // (bytes_read, random_ios) is charged as actually incurred, including
  // by speculative page loads — the bytes really moved, and the paper's
  // disk measures must say so.
  // `id_at` maps a candidate position to its series id (typically a view
  // into the caller's sorted lower-bound order — refinement usually stops
  // after a tiny prefix, so callers should not materialize id arrays);
  // it must be pure and safe to call from any worker. Returns the number
  // of committed candidates, or IoError when a committed candidate's
  // fetch failed.
  Result<size_t> RefineOrdered(SeriesProvider* provider, size_t count,
                               const std::function<int64_t(size_t)>& id_at,
                               const std::function<bool(size_t)>& before,
                               const std::function<bool(size_t)>& after);

  size_t num_threads() const { return num_threads_; }
  size_t prefetch_depth() const { return prefetch_depth_; }
  // The caller's counters (possibly null): for index bookkeeping that
  // happens on the query thread around scans (e.g. ADS+ refinement).
  QueryCounters* counters() const { return counters_; }

  // Budgeted readahead hint for ids about to be scanned (the tree search
  // uses it on the best-priority queued leaves while the current leaf
  // scans). Returns the pages announced; 0 when the provider does not
  // prefetch. Runs on the calling thread.
  size_t PrefetchIds(SeriesProvider* provider, std::span<const int64_t> ids,
                     size_t max_pages) {
    return serial_.PrefetchIds(provider, ids, max_pages);
  }

 private:
  // Below this many candidates a fan-out costs more than it saves.
  static constexpr size_t kMinParallelCandidates = 64;
  // Candidates per worker per speculative refinement block.
  static constexpr size_t kRefineGrain = 16;

  bool ParallelEligible(size_t count) const {
    return num_threads_ > 1 && count >= kMinParallelCandidates;
  }
  // Shard count for a provider-backed scan of `count` candidates: 1 when
  // the scan must run serially, else num_threads_ clamped to the
  // provider's concurrent-pin budget and the query's pin budget (see
  // class comment).
  size_t ProviderShards(SeriesProvider* provider, size_t count) const;

  // Shard [0, count) into `shards` contiguous ranges, run
  // `shard(worker, begin, end)` with shard 0 on the calling thread, then
  // merge every worker's answers and counters into the caller's. Returns
  // the summed per-worker evaluated counts.
  struct WorkerState;
  size_t RunSharded(
      size_t count, size_t shards,
      const std::function<void(WorkerState*, size_t, size_t)>& shard);
  void MergeWorkers(std::vector<WorkerState>* workers);

  // Evaluates one in-memory candidate into a worker's local state with
  // the bound-aware threshold (invariants 1 and 2 above).
  void EvaluateOne(WorkerState* ws, std::span<const float> series,
                   int64_t id) const;
  // Batch-kernel equivalent over `count` candidates at block + c * stride
  // with ascending ids from first_id; also advances ws->evaluated.
  void EvaluateBatch(WorkerState* ws, const float* block, size_t count,
                     size_t stride, int64_t first_id) const;

  std::span<const float> query_;
  AnswerSet* answers_;
  QueryCounters* counters_;
  size_t num_threads_;
  uint64_t pin_budget_;
  size_t prefetch_depth_;
  std::shared_ptr<CancellationToken> cancel_;  // null = not cancellable
  ThreadPool* pool_;
  LeafScanner serial_;
  const DistanceKernels& kernels_;
};

}  // namespace hydra

#endif  // HYDRA_EXEC_PARALLEL_SCANNER_H_
