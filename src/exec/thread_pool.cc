#include "exec/thread_pool.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "common/options.h"

namespace hydra {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = num_threads == 0 ? 1 : num_threads;
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task, const void* tag) {
  size_t worker;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    worker = next_;
    next_ = (next_ + 1) % queues_.size();
  }
  SubmitTo(worker, std::move(task), tag);
}

void ThreadPool::SubmitTo(size_t worker, std::function<void()> task,
                          const void* tag) {
  Queue& q = *queues_[worker % queues_.size()];
  // pending_ rises before the task is visible in the queue: a worker that
  // sees pending_ > 0 with empty queues simply retries its pop, while the
  // reverse order could pop-then-decrement a count that was never raised.
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.emplace_back(std::move(task), tag);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryRunOne(const void* tag) {
  std::function<void()> task;
  const size_t n = queues_.size();
  for (size_t i = 0; i < n && !task; ++i) {
    Queue& q = *queues_[i];
    std::lock_guard<std::mutex> lock(q.mu);
    if (tag == nullptr) {
      if (q.tasks.empty()) continue;
      // Back of the queue, like a worker's steal: the front stays with
      // the worker the task was routed to.
      task = std::move(q.tasks.back().first);
      q.tasks.pop_back();
    } else {
      // Targeted help: take the newest task carrying the caller's tag,
      // leaving everything else in place.
      for (auto it = q.tasks.rbegin(); it != q.tasks.rend(); ++it) {
        if (it->second != tag) continue;
        task = std::move(it->first);
        q.tasks.erase(std::next(it).base());
        break;
      }
    }
  }
  if (!task) return false;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    --pending_;
  }
  task();
  return true;
}

std::function<void()> ThreadPool::TryPop(size_t self) {
  const size_t n = queues_.size();
  for (size_t offset = 0; offset < n; ++offset) {
    Queue& q = *queues_[(self + offset) % n];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    std::function<void()> task;
    if (offset == 0) {
      task = std::move(q.tasks.front().first);
      q.tasks.pop_front();
    } else {
      task = std::move(q.tasks.back().first);
      q.tasks.pop_back();
    }
    return task;
  }
  return {};
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    std::function<void()> task = TryPop(self);
    if (task) {
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        --pending_;
      }
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (pending_ > 0) continue;  // raced with a submit; retry the pop
    if (stop_) return;           // all queues drained and shutdown begun
    wake_cv_.wait(lock, [this] { return pending_ > 0 || stop_; });
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    const size_t v =
        EnvOrSize("HYDRA_THREADS", static_cast<size_t>(hw == 0 ? 1 : hw));
    return v == 0 ? size_t{1} : v;
  }());
  return pool;
}

void TaskGroup::HelpUntilDrained() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (pending_ == 0) return;
    }
    // Help instead of sleeping — but only with THIS group's tasks: an
    // arbitrary queued task (another serving query, say) could run for
    // this waiter's entire latency budget.
    if (pool_ != nullptr && pool_->TryRunOne(this)) continue;
    // None of this group's tasks are queued, and only the owner thread
    // (which is here, waiting) can enqueue more: the remaining pending
    // tasks are all mid-execution on workers, so blocking is safe — each
    // completion notifies this group's cv.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_ == 0; });
    return;
  }
}

TaskGroup::~TaskGroup() { HelpUntilDrained(); }

void TaskGroup::Run(std::function<void()> task) {
  pool_->Submit(Wrap(std::move(task)), this);
}

void TaskGroup::RunOn(size_t worker, std::function<void()> task) {
  pool_->SubmitTo(worker, Wrap(std::move(task)), this);
}

std::function<void()> TaskGroup::Wrap(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  return [this, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  };
}

void TaskGroup::Wait() {
  HelpUntilDrained();
  std::unique_lock<std::mutex> lock(mu_);
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace hydra
