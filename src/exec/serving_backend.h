#ifndef HYDRA_EXEC_SERVING_BACKEND_H_
#define HYDRA_EXEC_SERVING_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "common/counters.h"
#include "common/status.h"
#include "index/index.h"

namespace hydra {

class QueryScheduler;     // exec/query_scheduler.h
class HydraClient;        // net/client.h
class ReplicaSetBackend;  // net/replica_set.h

// ---------------------------------------------------------------------------
// The client-facing serving surface. Everything a caller needs to submit
// queries and drain results lives in this header: the routing options,
// the typed per-query ticket, the completed-query record, and the
// ServingBackend interface both the in-process engine (ServingSession)
// and the remote client (HydraClient) implement. Callers — the harness
// sweeps, bench_serving, hydra_cli — program against ServingBackend and
// never name a concrete backend, which is what makes "local" vs
// "remote" a one-line swap with identical answers (tests/net_serving
// proves bit-identity).
// ---------------------------------------------------------------------------

// Admission class of a submitted query. Priority orders ADMISSION only:
// when in-flight slots free up, waiting interactive queries are admitted
// before normal ones, normal before background. It never preempts running
// queries and never reorders the completion stream (Next() stays in
// global submission order — the response protocol is position-free via
// QueryTicket, so a front-end can interleave tenants however it likes).
enum class QueryPriority : uint8_t {
  kBackground = 0,
  kNormal = 1,
  kInteractive = 2,
};

// Per-submission routing: which tenant the query belongs to and how its
// admission is ranked. Plain Submit(query, params) means the default
// tenant at normal priority — the historical single-tenant behavior.
struct SubmitOptions {
  std::string tenant;  // "" = the default tenant
  QueryPriority priority = QueryPriority::kNormal;
};

// Typed handle to one submitted query — the unit a response protocol
// serializes. Replaces the raw uint64_t position ticket: the id is still
// the submission position (Next() returns results in id order), but the
// handle also carries the query's tenant/priority routing and a
// thread-safe per-query status accessor that becomes meaningful the
// moment the query completes, independent of who drains the stream.
// Copyable and cheap (shared state with the backend); a
// default-constructed or dropped-submission ticket is !valid().
class QueryTicket {
 public:
  QueryTicket() = default;

  // False for a default-constructed ticket and for a submission the
  // backend dropped (stream closed while the producer was blocked).
  bool valid() const { return state_ != nullptr; }
  // Submission position — Next() hands results back in id order. For an
  // invalid ticket this is QueryScheduler::kDropped (UINT64_MAX).
  uint64_t id() const;
  const std::string& tenant() const;
  QueryPriority priority() const;

  // True once the query's result has been filed (whether or not it has
  // been drained from the completion stream yet).
  bool done() const;
  // The query's terminal Status once done(): OK for a served answer, the
  // typed error otherwise (DeadlineExceeded, IoError, ...). Before
  // completion — and forever for an invalid ticket — a typed Unavailable
  // placeholder. Safe from any thread.
  Status status() const;

 private:
  friend class QueryScheduler;
  friend class HydraClient;
  friend class ReplicaSetBackend;
  struct State {
    uint64_t id = 0;
    std::string tenant;
    QueryPriority priority = QueryPriority::kNormal;
    // status is written before done is set (release); readers acquire.
    std::atomic<bool> done{false};
    Status status = Status::OK();
  };
  explicit QueryTicket(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

// One completed query as it leaves the completion stream.
struct ServedQuery {
  QueryTicket ticket;
  Result<KnnAnswer> answer{Status::Internal("not served")};
  QueryCounters counters;
  // Submission (Submit() return) to completion, queue wait included —
  // the latency a serving client observes under load.
  double seconds = 0.0;
};

// Backend observability snapshot: the effective (post-negotiation)
// serving configuration plus coalescing counters. All-u64 so it encodes
// to the wire unchanged — a remote client's stats() answers with the
// SERVER session's numbers, not a local approximation.
struct ServingStats {
  uint64_t concurrency = 0;
  uint64_t queue_capacity = 0;
  uint64_t batch_window = 0;
  uint64_t batches_served = 0;
  uint64_t coalesced_queries = 0;
  uint64_t per_query_pin_budget = 0;       // 0 = unconstrained provider
  uint64_t per_query_prefetch_budget = 0;  // 0 = no prefetch support
  uint64_t in_flight = 0;                  // racy by nature (monitoring)
  // Server-level policing counters (zero for an in-process session; a
  // HydraServer fills them into its kStatsReply so operators can see
  // how many connections it accepted and how many malformed/oversized/
  // unknown frames it rejected).
  uint64_t connections_accepted = 0;
  uint64_t frames_rejected = 0;
  // Replica-routing counters (zero for single-endpoint backends; a
  // ReplicaSetBackend fills them with its own fan-out activity).
  uint64_t retries = 0;    // re-submissions after a retry-safe failure
  uint64_t failovers = 0;  // queries answered by a non-primary replica
  uint64_t hedges = 0;     // backup attempts launched by the hedger
};

// The single client-facing serving interface. Contract (both
// implementations, enforced by the loopback equivalence suite):
//  - Submit copies the query span before returning; results come back
//    from Next() in ticket-id (submission) order. After Finish — or
//    after the backend/stream is torn down — Submit returns an invalid
//    ticket (!valid(), status kUnavailable) instead of blocking forever.
//  - Next blocks for the next result in submission order and returns
//    nullopt once Finish() was called and every accepted query drained.
//  - Finish is idempotent and only closes the SUBMISSION side; pending
//    results remain drainable.
//  - Answers are bit-identical across backends for the same index +
//    params: the network layer may move bytes, never change them.
class ServingBackend {
 public:
  virtual ~ServingBackend() = default;

  virtual QueryTicket Submit(std::span<const float> query,
                             const SearchParams& params,
                             const SubmitOptions& submit = {}) = 0;
  virtual std::optional<ServedQuery> Next() = 0;
  virtual void Finish() = 0;
  virtual ServingStats stats() const = 0;
};

}  // namespace hydra

#endif  // HYDRA_EXEC_SERVING_BACKEND_H_
