#ifndef HYDRA_EXEC_SHARED_BOUND_H_
#define HYDRA_EXEC_SHARED_BOUND_H_

#include <atomic>
#include <limits>

namespace hydra {

// Monotonically tightening best-so-far squared-distance bound shared by
// the workers of one parallel scan. Every published value must be a valid
// upper bound on the final k-th neighbor distance (each worker publishes
// the k-th distance of its own full, exactly-evaluated answer set, which
// can only overestimate the global k-th); the shared value is the minimum
// of everything published, so a stale read is merely looser, never wrong.
// That makes relaxed atomics sufficient: early abandoning stays correct
// under any interleaving, it just bites a little later.
class SharedBound {
 public:
  explicit SharedBound(
      double initial = std::numeric_limits<double>::infinity())
      : bound_(initial) {}

  double Load() const { return bound_.load(std::memory_order_relaxed); }

  // Atomically lowers the bound to `d` if `d` is tighter.
  void RelaxTo(double d) {
    double cur = bound_.load(std::memory_order_relaxed);
    while (d < cur &&
           !bound_.compare_exchange_weak(cur, d, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> bound_;
};

}  // namespace hydra

#endif  // HYDRA_EXEC_SHARED_BOUND_H_
